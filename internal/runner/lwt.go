package runner

import (
	"math/rand"
	"runtime"
	"sync"

	"mtc/internal/core"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// LWTConfig parameterizes a lightweight-transaction run against a live
// store: each session repeatedly reads a register's current value and
// issues a compare-and-set to a fresh unique value, retrying on CAS
// failure (the Cassandra-style client loop).
type LWTConfig struct {
	Sessions       int
	OpsPerSession  int
	Keys           int
	Seed           int64
	MaxCASAttempts int // per op; default 64
}

// LWTResult is the outcome of RunLWT.
type LWTResult struct {
	Ops       []core.LWT
	Succeeded int
	Failed    int // failed CAS attempts (retried)
}

// RunLWT executes the LWT workload and returns the recorded history of
// *successful* operations: per the paper, a failed compare-and-set is
// equivalent to a simple read and does not join the write chain. The
// per-key chains plus real-time intervals are exactly what VLLWT and the
// Porcupine baseline consume.
func RunLWT(s *kv.Store, cfg LWTConfig) *LWTResult {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.MaxCASAttempts <= 0 {
		cfg.MaxCASAttempts = 64
	}
	// Insert every register first (single-threaded; inserts head chains).
	var (
		mu  sync.Mutex
		res LWTResult
	)
	for k := 0; k < cfg.Keys; k++ {
		ok, rec := s.Insert(workload.KeyName(k), 0)
		if ok {
			rec.ID = len(res.Ops)
			res.Ops = append(res.Ops, rec)
			res.Succeeded++
		}
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(cfg.Seed + int64(si) + 1))
			values := 0
			for i := 0; i < cfg.OpsPerSession; i++ {
				key := workload.KeyName(rng.Intn(cfg.Keys))
				newVal := uniqueValue(si, values)
				values++
				for attempt := 0; attempt < cfg.MaxCASAttempts; attempt++ {
					cur, _ := s.ReadValue(key)
					runtime.Gosched() // let rival sessions race the CAS
					ok, rec := s.CAS(key, cur, newVal)
					mu.Lock()
					if ok {
						rec.ID = len(res.Ops)
						res.Ops = append(res.Ops, rec)
						res.Succeeded++
						mu.Unlock()
						break
					}
					res.Failed++
					mu.Unlock()
				}
			}
		}(si)
	}
	close(start)
	wg.Wait()
	return &res
}
