// Package runner is the client harness of the black-box checking workflow
// (Figure 2, steps 1-3): it drives a workload plan against a kv.Store with
// one goroutine per session, records each session's requests and results,
// handles aborts with bounded retries, and combines the per-session logs
// into a single history for verification.
//
// Unique write values are produced by combining the session (client)
// identifier with a local counter, exactly as Section II-A prescribes, so
// every committed write of a key carries a distinct value.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// Config tunes an execution run.
type Config struct {
	// Retries bounds re-executions of a conflicted transaction (0 = give
	// up immediately). Each retry is a fresh transaction with fresh write
	// values.
	Retries int
	// KeepAborted records aborted transactions in the history (needed to
	// detect G1a AbortedRead); defaults to true in Run.
	DropAborted bool
	// OpDelay simulates per-operation client/server latency as busy-loop
	// iterations (a stand-in for the network round-trip that makes real
	// client sessions overlap). 0 uses a default that yields the
	// scheduler after every operation.
	OpDelay int
	// Window bounds the memory of a streaming run (RunStream only): the
	// online checker is compacted every Window/2 committed observations,
	// keeping O(Window) verification state instead of O(run), and the
	// run's history is not retained (StreamResult.H is nil). 0 verifies
	// unbounded. The window must exceed the store's maximum commit
	// staleness for verdict parity; see core.Incremental.Compact.
	Window int
	// CompactEvery overrides how often (in observed transactions) the
	// windowed stream compacts; 0 picks Window/2. Smaller values bound
	// memory tighter at more rebuild cost. Ignored when Window is 0.
	CompactEvery int
	// Shard routes a streaming run's commits to per-component online
	// checkers (RunStream only): the workload plan is decomposed into
	// key-disjoint session groups (workload.Components) and up to Shard
	// verifier goroutines check the groups concurrently, each with its
	// own core.Incremental — and, when Window > 0, its own per-shard
	// epoch compaction. The merged verdict's OK equals the unsharded
	// stream's (no dependency edge crosses components). 0 keeps the
	// single shared checker.
	Shard int
}

// Result is the outcome of a run.
type Result struct {
	H *history.History
	// Attempts counts executed transactions including retries; Committed
	// those that committed.
	Attempts  int
	Committed int
	Aborted   int
}

// AbortRate returns aborted / attempts for this run.
func (r *Result) AbortRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(r.Attempts)
}

// record is one executed transaction attempt as logged by a session.
type record struct {
	ops       []history.Op
	start     int64
	finish    int64
	committed bool
}

// uniqueValue builds the session-scoped unique value for the n-th write of
// session s. Sessions are capped at 1<<20 writes each.
func uniqueValue(session, n int) history.Value {
	return history.Value(int64(session+1)<<20 | int64(n+1))
}

// Run executes the workload against the store and returns the combined
// history. The store is initialized with value 0 for every key in the
// plan (the initial transaction ⊥T).
func Run(s *kv.Store, w *workload.Workload, cfg Config) *Result {
	s.Init(w.Keys)
	perSession := make([][]record, len(w.Sessions))
	start := make(chan struct{}) // barrier: all sessions begin together
	var wg sync.WaitGroup
	for si := range w.Sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			<-start
			perSession[si] = runSession(s, si, w.Sessions[si], cfg)
		}(si)
	}
	close(start)
	wg.Wait()

	res := &Result{}
	b := history.NewBuilder(w.Keys...)
	for si, recs := range perSession {
		for _, r := range recs {
			res.Attempts++
			if r.committed {
				res.Committed++
			} else {
				res.Aborted++
				if cfg.DropAborted {
					continue
				}
			}
			if r.committed {
				b.TimedTxn(si, r.start, r.finish, r.ops...)
			} else {
				b.TimedAbortedTxn(si, r.start, r.finish, r.ops...)
			}
		}
	}
	res.H = b.Build()
	return res
}

// runSession executes one session's transactions serially with retries.
func runSession(s *kv.Store, si int, specs []workload.TxnSpec, cfg Config) []record {
	var recs []record
	values := 0
	for _, spec := range specs {
		for attempt := 0; ; attempt++ {
			rec, ok := runTxn(s, si, spec, &values, cfg.OpDelay)
			recs = append(recs, rec)
			if ok || attempt >= cfg.Retries {
				break
			}
		}
	}
	return recs
}

// spinSink defeats dead-code elimination of the busy-delay loop; sessions
// write it concurrently, hence the atomic.
var spinSink atomic.Int64

// latency simulates the client-server round trip: yield the scheduler so
// concurrent sessions interleave, plus an optional busy delay.
func latency(spin int) {
	runtime.Gosched()
	var acc int64
	for i := 0; i < spin; i++ {
		acc += int64(i)
	}
	if acc != 0 {
		spinSink.Store(acc)
	}
}

// runTxn executes a single transaction attempt. It returns the record and
// whether the transaction committed.
func runTxn(s *kv.Store, session int, spec workload.TxnSpec, values *int, spin int) (record, bool) {
	tx := s.Begin()
	ok := true
	for _, op := range spec.Ops {
		latency(spin)
		var err error
		switch op.Kind {
		case workload.SpecRead:
			_, err = tx.Read(op.Key)
		case workload.SpecWrite:
			err = tx.Write(op.Key, uniqueValue(session, *values))
			*values++
		case workload.SpecRMW:
			if _, err = tx.Read(op.Key); err == nil {
				err = tx.Write(op.Key, uniqueValue(session, *values))
				*values++
			}
		case workload.SpecAppend:
			err = tx.Append(op.Key, uniqueValue(session, *values))
			*values++
		case workload.SpecReadList:
			_, err = tx.ReadList(op.Key)
		}
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		ok = tx.Commit() == nil
	}
	return record{
		ops:       tx.Ops(),
		start:     tx.StartTS(),
		finish:    tx.FinishTS(),
		committed: tx.Committed(),
	}, ok
}
