package runner

import (
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

func mtPlan(seed int64) *workload.Workload {
	return workload.GenerateMT(workload.MTConfig{
		Sessions: 4, Txns: 80, Objects: 6, Dist: workload.Uniform,
		Seed: seed, ReadOnlyFrac: 0.2,
	})
}

func TestRunSerializableStorePassesAllLevels(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	res := Run(s, mtPlan(1), Config{Retries: 10})
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if err := res.H.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := history.ValidateMT(res.H); err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.SSER, core.SER, core.SI} {
		if r := core.Check(res.H, lvl); !r.OK {
			t.Fatalf("serializable store must satisfy %s:\n%s", lvl, r.Explain())
		}
	}
}

func TestRunSIStorePassesSI(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	res := Run(s, mtPlan(2), Config{Retries: 10})
	if r := core.CheckSI(res.H); !r.OK {
		t.Fatalf("fault-free SI store must satisfy SI:\n%s", r.Explain())
	}
}

func TestRun2PLStorePassesSSER(t *testing.T) {
	s := kv.NewStore(kv.Mode2PL)
	res := Run(s, mtPlan(3), Config{Retries: 50})
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if r := core.CheckSSER(res.H); !r.OK {
		t.Fatalf("2PL store must satisfy SSER:\n%s", r.Explain())
	}
}

func TestRunAccounting(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	res := Run(s, mtPlan(4), Config{Retries: 10})
	if res.Attempts != res.Committed+res.Aborted {
		t.Fatalf("attempts %d != committed %d + aborted %d", res.Attempts, res.Committed, res.Aborted)
	}
	if got := int(s.Stats().Commits.Load()); got != res.Committed {
		t.Fatalf("store commits %d != runner committed %d", got, res.Committed)
	}
	if res.AbortRate() < 0 || res.AbortRate() > 1 {
		t.Fatalf("abort rate %f", res.AbortRate())
	}
}

func TestRunDropAborted(t *testing.T) {
	// High contention to force aborts, then drop them.
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 8, Txns: 50, Objects: 1, Dist: workload.Uniform, Seed: 5,
	})
	s := kv.NewStore(kv.ModeSerializable)
	res := Run(s, w, Config{Retries: 3, DropAborted: true})
	for i := range res.H.Txns {
		if !res.H.Txns[i].Committed {
			t.Fatal("aborted transaction recorded despite DropAborted")
		}
	}
	if res.Aborted == 0 {
		t.Log("warning: no aborts under extreme contention (unexpected but not fatal)")
	}
}

func TestRunKeepsAbortedByDefault(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 8, Txns: 50, Objects: 1, Dist: workload.Uniform, Seed: 6,
	})
	s := kv.NewStore(kv.ModeSerializable)
	res := Run(s, w, Config{Retries: 3})
	aborted := 0
	for i := range res.H.Txns {
		if !res.H.Txns[i].Committed {
			aborted++
		}
	}
	if aborted != res.Aborted {
		t.Fatalf("history aborted %d != accounted %d", aborted, res.Aborted)
	}
}

func TestUniqueValuesAcrossSessions(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	res := Run(s, mtPlan(7), Config{Retries: 10})
	if _, dups := history.BuildWriterIndex(res.H); len(dups) != 0 {
		t.Fatalf("duplicate committed writes: %v", dups)
	}
}

func TestGTWorkloadHigherAbortRateThanMT(t *testing.T) {
	mt := workload.GenerateMT(workload.MTConfig{
		Sessions: 8, Txns: 60, Objects: 20, Dist: workload.Uniform, Seed: 8,
	})
	gt := workload.GenerateGT(workload.GTConfig{
		Sessions: 8, Txns: 60, Objects: 20, OpsPerTxn: 20, Seed: 8,
	})
	sMT := kv.NewStore(kv.ModeSerializable)
	sGT := kv.NewStore(kv.ModeSerializable)
	rMT := Run(sMT, mt, Config{Retries: 0})
	rGT := Run(sGT, gt, Config{Retries: 0})
	if rGT.AbortRate() <= rMT.AbortRate() {
		t.Fatalf("GT abort rate %.3f should exceed MT abort rate %.3f (Figure 11)",
			rGT.AbortRate(), rMT.AbortRate())
	}
}

func TestFaultyLostUpdateDetectedBySI(t *testing.T) {
	detected := false
	for seed := int64(0); seed < 5 && !detected; seed++ {
		s := kv.NewFaultyStore(kv.ModeSI, kv.Faults{LostUpdate: 1, Seed: seed + 1})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 100, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		res := Run(s, w, Config{Retries: 5})
		r := core.CheckSI(res.H)
		if !r.OK && r.Divergence != nil {
			detected = true
		}
	}
	if !detected {
		t.Fatal("LostUpdate fault never produced a DIVERGENCE under contention")
	}
}

func TestFaultyWriteSkewDetectedBySERNotSI(t *testing.T) {
	serViolated, siViolated := false, false
	for seed := int64(0); seed < 8 && !serViolated; seed++ {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{WriteSkew: 1, Seed: seed + 1})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 150, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		res := Run(s, w, Config{Retries: 5})
		if r := core.CheckSER(res.H); !r.OK && len(r.Cycle) > 0 {
			serViolated = true
			if rsi := core.CheckSI(res.H); !rsi.OK {
				siViolated = true
			}
		}
	}
	if !serViolated {
		t.Fatal("WriteSkew fault never violated SER")
	}
	// With full WriteSkew injection the store degrades to SI, so SI itself
	// should hold on the same history.
	if siViolated {
		t.Fatal("WriteSkew-degraded store should still satisfy SI")
	}
}

func TestFaultyDirtyAbortDetected(t *testing.T) {
	s := kv.NewFaultyStore(kv.ModeSI, kv.Faults{DirtyAbort: 0.3, Seed: 1})
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 4, Txns: 100, Objects: 4, Dist: workload.Uniform, Seed: 9,
	})
	res := Run(s, w, Config{Retries: 2})
	r := core.CheckSI(res.H)
	if r.OK {
		t.Fatal("dirty aborts must violate SI")
	}
	foundAbortedRead := false
	for _, a := range r.Anomalies {
		if a.Kind == history.AbortedRead {
			foundAbortedRead = true
		}
	}
	if !foundAbortedRead {
		t.Fatalf("expected AbortedRead anomaly, got: %s", r.Explain())
	}
}

func TestFaultyStaleSnapshotViolatesSSER(t *testing.T) {
	detected := false
	for seed := int64(0); seed < 5 && !detected; seed++ {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{StaleSnapshot: 0.5, Seed: seed + 1})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 100, Objects: 3, Dist: workload.Uniform, Seed: seed,
		})
		res := Run(s, w, Config{Retries: 5})
		if r := core.CheckSSER(res.H); !r.OK {
			detected = true
		}
	}
	if !detected {
		t.Fatal("stale snapshots never violated SSER")
	}
}

func TestRunLWTFaultFreeLinearizable(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	res := RunLWT(s, LWTConfig{Sessions: 6, OpsPerSession: 40, Keys: 3, Seed: 1})
	if res.Succeeded == 0 {
		t.Fatal("no LWT operations succeeded")
	}
	if r := core.VLLWT(res.Ops); !r.OK {
		t.Fatalf("fault-free LWT history must be linearizable: %s on %s", r.Reason, r.Key)
	}
}

func TestRunLWTCASFailApplyDetected(t *testing.T) {
	s := kv.NewFaultyStore(kv.ModeSI, kv.Faults{CASFailApply: 0.5, Seed: 2})
	res := RunLWT(s, LWTConfig{Sessions: 6, OpsPerSession: 40, Keys: 2, Seed: 2})
	if res.Failed == 0 {
		t.Skip("no CAS failures occurred; cannot exercise the fault")
	}
	if r := core.VLLWT(res.Ops); r.OK {
		t.Fatal("CASFailApply fault must break linearizability")
	}
}
