package runner

import (
	"context"
	"sync"
	"sync/atomic"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// StreamResult is the outcome of a streaming run: the usual execution
// stats plus the online verdict.
type StreamResult struct {
	Result
	// Verdict is the incremental checker's verdict over everything the
	// run committed (identical to batch-checking H). On a sharded run it
	// is the merged per-component verdict: OK is the conjunction, the
	// counts are sums, and the counterexample comes from the first
	// violating component with its transaction ids remapped to global
	// stream positions (the ids of the assembled history on unwindowed
	// runs).
	Verdict core.Result
	// ViolationAt is the number of transactions (including ⊥T) the
	// checker had ingested when the violation surfaced mid-stream. It is
	// 0 when the run verified clean AND when the violation only became
	// decidable at Finalize (an unresolved aborted/thin-air read has no
	// single offending commit). On a sharded run it counts transactions
	// verified across every shard, exact up to the other workers'
	// in-flight transaction.
	ViolationAt int
	// Shards is the number of key-disjoint components the run verified
	// through (Config.Shard > 0); 0 on an unsharded run.
	Shards int
	// EarlyAborted reports that the violation stopped the sessions
	// before the workload plan was exhausted.
	EarlyAborted bool
	// Err is the context's error when the run was cut short by
	// cancellation; the verdict then covers only the executed prefix.
	Err error
}

// streamMsg carries one executed transaction attempt from a session
// goroutine to the verifier, or (done) the marker that the session has
// published its last record and releases its staleness-horizon hold.
type streamMsg struct {
	si   int
	rec  record
	done bool
}

// startSessions initializes the store and launches one goroutine per
// session publishing every finished transaction attempt on the returned
// channel (closed when all sessions finish). Sessions block until
// release is called and stop at the next boundary once stop is set.
func startSessions(s *kv.Store, w *workload.Workload, cfg Config, stop *atomic.Bool) (ch chan streamMsg, release func()) {
	s.Init(w.Keys)
	ch = make(chan streamMsg, 256)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for si := range w.Sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			// Registered after wg.Done so it runs first: the done marker
			// is always published before the channel can close.
			defer func() { ch <- streamMsg{si: si, done: true} }()
			<-start
			values := 0
			for _, spec := range w.Sessions[si] {
				if stop.Load() {
					return
				}
				for attempt := 0; ; attempt++ {
					rec, ok := runTxn(s, si, spec, &values, cfg.OpDelay)
					ch <- streamMsg{si: si, rec: rec}
					if ok || attempt >= cfg.Retries || stop.Load() {
						break
					}
				}
			}
		}(si)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch, func() { close(start) }
}

// drainSessions is the dispatcher loop shared by the unsharded and
// sharded verifiers: it consumes every session record, maintains the
// run's accounting (attempts, committed, aborted, the DropAborted skip,
// cancellation-to-stop), assembles the history when b is non-nil, and
// hands each record to be verified to sink.
func drainSessions(ctx context.Context, ch <-chan streamMsg, stop *atomic.Bool, cfg Config, res *StreamResult, b *history.Builder, sink func(streamMsg)) {
	for msg := range ch {
		if res.Err == nil {
			if err := ctx.Err(); err != nil {
				res.Err = err
				stop.Store(true)
			}
		}
		if msg.done {
			sink(msg)
			continue
		}
		r := msg.rec
		res.Attempts++
		if r.committed {
			res.Committed++
		} else {
			res.Aborted++
			if cfg.DropAborted {
				continue
			}
		}
		if b != nil {
			if r.committed {
				b.TimedTxn(msg.si, r.start, r.finish, r.ops...)
			} else {
				b.TimedAbortedTxn(msg.si, r.start, r.finish, r.ops...)
			}
		}
		sink(msg)
	}
}

// plannedTxns counts the workload's planned transactions.
func plannedTxns(w *workload.Workload) int {
	n := 0
	for _, specs := range w.Sessions {
		n += len(specs)
	}
	return n
}

// RunStream executes the workload with verification pipelined into the
// run: session goroutines publish every finished transaction attempt
// over a channel, and a verifier goroutine feeds them to the online
// incremental checker (core.Incremental) while also assembling the
// history. The verdict is therefore available the moment the offending
// transaction commits — Cobra-style continuous verification — and, when
// a violation is found, the sessions are signalled to stop, so a buggy
// store is caught without paying for the rest of the run. lvl must be
// SER or SI (the online checker's levels). Cancelling ctx stops the
// sessions at the next transaction boundary; the result then carries the
// context's error and the verdict over the executed prefix.
//
// With cfg.Window > 0 the checker is compacted as the stream advances
// (epoch-windowed verification): memory stays bounded by the window
// regardless of run length, the history is not assembled (StreamResult.H
// is nil), and the verdict carries the compaction stats.
//
// With cfg.Shard > 0 and a plan that decomposes into more than one
// key-disjoint session group (workload.Components — e.g. a multi-tenant
// plan), commits are routed to per-component incremental checkers driven
// by up to cfg.Shard verifier goroutines, so verification scales with
// cores instead of serialising behind one checker; Window compaction
// then applies per shard. A plan that does not decompose falls back to
// the single shared checker.
func RunStream(ctx context.Context, s *kv.Store, w *workload.Workload, cfg Config, lvl core.Level) *StreamResult {
	if cfg.Shard > 0 {
		if comps := w.Components(); len(comps) > 1 {
			return runStreamSharded(ctx, s, w, cfg, lvl, comps)
		}
	}
	var stop atomic.Bool
	ch, release := startSessions(s, w, cfg, &stop)

	res := &StreamResult{}
	inc := core.NewIncremental(lvl)
	inc.InitTxn(w.Keys...)
	// Declaring the live sessions up front arms the staleness horizon:
	// windowed compaction then never evicts a writer slot some session's
	// in-flight transaction may still read, however late its record
	// arrives relative to the other sessions'.
	for si := range w.Sessions {
		inc.ExpectSession(si)
	}
	// Windowed streams keep memory bounded: no history builder, and the
	// checker is compacted on the shared MaybeCompact cadence.
	var b *history.Builder
	if cfg.Window <= 0 {
		b = history.NewBuilder(w.Keys...)
	}
	release()
	drainSessions(ctx, ch, &stop, cfg, res, b, func(msg streamMsg) {
		if msg.done {
			inc.EndSession(msg.si)
			return
		}
		vio := inc.Add(history.Txn{Session: msg.si, Ops: msg.rec.ops, Committed: msg.rec.committed})
		if vio != nil && !stop.Swap(true) {
			res.ViolationAt = inc.NumTxns()
		}
		inc.MaybeCompact(cfg.Window, cfg.CompactEvery, nil)
	})
	if b != nil {
		res.H = b.Build()
	}
	res.Verdict = inc.Finalize()
	res.EarlyAborted = !res.Verdict.OK && res.Committed < plannedTxns(w)
	return res
}

// shardMsg is one routed transaction: the component it belongs to plus
// the transaction itself, or (done) a session-retirement marker for the
// component's checker.
type shardMsg struct {
	comp int
	txn  history.Txn
	sess int
	done bool
}

// runStreamSharded is the component-sharded verifier behind RunStream:
// one core.Incremental per key-disjoint session group, min(cfg.Shard,
// groups) verifier goroutines (group g is owned by worker g mod workers,
// so one group's transactions are always checked in arrival order), and
// the shared dispatcher loop routing records to the owning worker. Every
// shard compacts independently under cfg.Window.
func runStreamSharded(ctx context.Context, s *kv.Store, w *workload.Workload, cfg Config, lvl core.Level, comps [][]int) *StreamResult {
	res := &StreamResult{Shards: len(comps)}
	compOf := make([]int, len(w.Sessions))
	for i := range compOf {
		compOf[i] = -1
	}
	incs := make([]*core.Incremental, len(comps))
	// ext[ci] maps shard ci's local stream positions (its checker's
	// transaction ids) to global stream positions — the ids the
	// unsharded checker and the assembled history would assign — so the
	// merged counterexample does not leak shard-local ids. Position 0 is
	// the shard's replicated ⊥T, standing for the global init. Windowed
	// runs keep no such per-transaction state (it would break the
	// bounded-memory contract); their counterexamples stay in shard
	// positions, like everything else about a stream that retains no
	// history to cross-reference.
	var ext [][]int
	if cfg.Window <= 0 {
		ext = make([][]int, len(comps))
	}
	for ci, group := range comps {
		incs[ci] = core.NewIncremental(lvl)
		incs[ci].InitTxn(w.SessionKeys(group)...)
		if ext != nil {
			ext[ci] = append(ext[ci], 0)
		}
		for _, si := range group {
			compOf[si] = ci
			incs[ci].ExpectSession(si)
		}
	}

	var stop atomic.Bool
	// verified counts transactions the shard checkers have actually
	// ingested (starting at the per-shard inits), so a recorded
	// violation position reflects checked work, not what the dispatcher
	// has merely enqueued; concurrent shards make it exact only up to
	// the other workers' in-flight transaction.
	var verified atomic.Int64
	var violationAt atomic.Int64
	verified.Store(int64(len(comps)))

	workers := cfg.Shard
	if workers > len(comps) {
		workers = len(comps)
	}
	shardCh := make([]chan shardMsg, workers)
	var vwg sync.WaitGroup
	for wi := range shardCh {
		shardCh[wi] = make(chan shardMsg, 256)
		vwg.Add(1)
		go func(in chan shardMsg) {
			defer vwg.Done()
			for m := range in {
				inc := incs[m.comp]
				if m.done {
					inc.EndSession(m.sess)
					continue
				}
				vio := inc.Add(m.txn)
				n := verified.Add(1)
				if vio != nil && !stop.Swap(true) {
					violationAt.Store(n)
				}
				inc.MaybeCompact(cfg.Window, cfg.CompactEvery, nil)
			}
		}(shardCh[wi])
	}

	ch, release := startSessions(s, w, cfg, &stop)
	var b *history.Builder
	if cfg.Window <= 0 {
		b = history.NewBuilder(w.Keys...)
	}
	release()
	arrival := 0 // global stream position of the last routed txn
	drainSessions(ctx, ch, &stop, cfg, res, b, func(msg streamMsg) {
		ci := compOf[msg.si]
		if ci < 0 {
			return // session outside every planned component (no specs)
		}
		if msg.done {
			shardCh[ci%workers] <- shardMsg{comp: ci, sess: msg.si, done: true}
			return
		}
		arrival++
		if ext != nil {
			ext[ci] = append(ext[ci], arrival)
		}
		shardCh[ci%workers] <- shardMsg{comp: ci, txn: history.Txn{Session: msg.si, Ops: msg.rec.ops, Committed: msg.rec.committed}}
	})
	for _, in := range shardCh {
		close(in)
	}
	vwg.Wait()

	if b != nil {
		res.H = b.Build()
	}
	merged := core.Result{Level: lvl, OK: true}
	for ci, inc := range incs {
		r := inc.Finalize()
		merged.NumTxns += r.NumTxns
		merged.NumEdges += r.NumEdges
		merged.CompactedTxns += r.CompactedTxns
		merged.CompactedEpochs += r.CompactedEpochs
		if !r.OK && merged.OK {
			// First violating component (in component order) provides the
			// counterexample, remapped to global stream positions when the
			// run tracked them (unwindowed).
			if ext != nil {
				r = core.RemapResult(r, ext[ci])
			}
			merged.OK = false
			merged.Anomalies = r.Anomalies
			merged.Divergence = r.Divergence
			merged.Cycle = r.Cycle
		}
	}
	res.Verdict = merged
	res.ViolationAt = int(violationAt.Load())
	res.EarlyAborted = !res.Verdict.OK && res.Committed < plannedTxns(w)
	return res
}
