package runner

import (
	"context"
	"sync"
	"sync/atomic"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// StreamResult is the outcome of a streaming run: the usual execution
// stats plus the online verdict.
type StreamResult struct {
	Result
	// Verdict is the incremental checker's verdict over everything the
	// run committed (identical to batch-checking H).
	Verdict core.Result
	// ViolationAt is the number of transactions (including ⊥T) the
	// checker had ingested when the violation surfaced mid-stream. It is
	// 0 when the run verified clean AND when the violation only became
	// decidable at Finalize (an unresolved aborted/thin-air read has no
	// single offending commit).
	ViolationAt int
	// EarlyAborted reports that the violation stopped the sessions
	// before the workload plan was exhausted.
	EarlyAborted bool
	// Err is the context's error when the run was cut short by
	// cancellation; the verdict then covers only the executed prefix.
	Err error
}

// streamMsg carries one executed transaction attempt from a session
// goroutine to the verifier.
type streamMsg struct {
	si  int
	rec record
}

// RunStream executes the workload with verification pipelined into the
// run: session goroutines publish every finished transaction attempt
// over a channel, and a verifier goroutine feeds them to the online
// incremental checker (core.Incremental) while also assembling the
// history. The verdict is therefore available the moment the offending
// transaction commits — Cobra-style continuous verification — and, when
// a violation is found, the sessions are signalled to stop, so a buggy
// store is caught without paying for the rest of the run. lvl must be
// SER or SI (the online checker's levels). Cancelling ctx stops the
// sessions at the next transaction boundary; the result then carries the
// context's error and the verdict over the executed prefix.
//
// With cfg.Window > 0 the checker is compacted as the stream advances
// (epoch-windowed verification): memory stays bounded by the window
// regardless of run length, the history is not assembled (StreamResult.H
// is nil), and the verdict carries the compaction stats.
func RunStream(ctx context.Context, s *kv.Store, w *workload.Workload, cfg Config, lvl core.Level) *StreamResult {
	s.Init(w.Keys)
	ch := make(chan streamMsg, 256)
	var stop atomic.Bool
	start := make(chan struct{})
	var wg sync.WaitGroup
	for si := range w.Sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			<-start
			values := 0
			for _, spec := range w.Sessions[si] {
				if stop.Load() {
					return
				}
				for attempt := 0; ; attempt++ {
					rec, ok := runTxn(s, si, spec, &values, cfg.OpDelay)
					ch <- streamMsg{si: si, rec: rec}
					if ok || attempt >= cfg.Retries || stop.Load() {
						break
					}
				}
			}
		}(si)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	res := &StreamResult{}
	inc := core.NewIncremental(lvl)
	inc.InitTxn(w.Keys...)
	// Windowed streams keep memory bounded: no history builder, and the
	// checker is compacted on the shared MaybeCompact cadence.
	var b *history.Builder
	if cfg.Window <= 0 {
		b = history.NewBuilder(w.Keys...)
	}
	planned := 0
	for _, specs := range w.Sessions {
		planned += len(specs)
	}
	close(start)
	for msg := range ch {
		if res.Err == nil {
			if err := ctx.Err(); err != nil {
				res.Err = err
				stop.Store(true)
			}
		}
		r := msg.rec
		res.Attempts++
		if r.committed {
			res.Committed++
		} else {
			res.Aborted++
			if cfg.DropAborted {
				continue
			}
		}
		if b != nil {
			if r.committed {
				b.TimedTxn(msg.si, r.start, r.finish, r.ops...)
			} else {
				b.TimedAbortedTxn(msg.si, r.start, r.finish, r.ops...)
			}
		}
		vio := inc.Add(history.Txn{Session: msg.si, Ops: r.ops, Committed: r.committed})
		if vio != nil && !stop.Swap(true) {
			res.ViolationAt = inc.NumTxns()
		}
		inc.MaybeCompact(cfg.Window, cfg.CompactEvery, nil)
	}
	if b != nil {
		res.H = b.Build()
	}
	res.Verdict = inc.Finalize()
	res.EarlyAborted = !res.Verdict.OK && res.Committed < planned
	return res
}
