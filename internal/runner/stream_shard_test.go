package runner

import (
	"context"
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// TestRunStreamShardedClean: a multi-tenant run verified through
// per-component checkers accepts a healthy store, reports the component
// count, and the batch checker agrees on the collected history.
func TestRunStreamShardedClean(t *testing.T) {
	for _, lvl := range []core.Level{core.SER, core.SI} {
		mode := kv.ModeSI
		if lvl == core.SER {
			mode = kv.ModeSerializable
		}
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 40, Objects: 6, Dist: workload.Uniform, Seed: 11, ReadOnlyFrac: 0.25,
			Tenants: 4,
		})
		res := RunStream(context.Background(), kv.NewStore(mode), w, Config{Retries: 6, Shard: 4}, lvl)
		if !res.Verdict.OK {
			t.Fatalf("%s: clean sharded run rejected: %s", lvl, res.Verdict.Explain())
		}
		if res.Shards != 4 {
			t.Fatalf("%s: verified through %d shards, want 4", lvl, res.Shards)
		}
		if res.H == nil {
			t.Fatalf("%s: unwindowed sharded run must collect the history", lvl)
		}
		if batch := core.Check(res.H, lvl); !batch.OK {
			t.Fatalf("%s: batch disagrees on the collected history: %s", lvl, batch.Explain())
		}
		// Each shard adds its own init: merged txn count is the observed
		// transactions plus one ⊥T per component.
		if want := res.Attempts + res.Shards; res.Verdict.NumTxns != want {
			t.Fatalf("%s: merged NumTxns %d, want %d (attempts %d + %d inits)",
				lvl, res.Verdict.NumTxns, want, res.Attempts, res.Shards)
		}
	}
}

// TestRunStreamShardedCatchesViolation: a faulty store is caught by the
// sharded pipeline, early-aborting the run just like the unsharded one.
func TestRunStreamShardedCatchesViolation(t *testing.T) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	for seed := int64(1); seed <= 10; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 400, Objects: 2, Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.1,
			Tenants: 4,
		})
		res := RunStream(context.Background(), bug.NewStore(seed), w, Config{Retries: 4, Shard: 2}, core.SI)
		if res.Verdict.OK {
			continue // bug did not manifest under this seed; try the next
		}
		if res.Shards != 4 {
			t.Fatalf("seed %d: %d shards, want 4", seed, res.Shards)
		}
		if batch := core.CheckSI(res.H); batch.OK {
			t.Fatalf("seed %d: batch accepts the history the sharded stream rejected", seed)
		}
		if res.ViolationAt == 0 {
			t.Fatal("violation found mid-stream but ViolationAt not recorded")
		}
		if !res.EarlyAborted {
			t.Fatalf("seed %d: sharded run should abort early (committed %d)", seed, res.Committed)
		}
		assertVerdictIndexesHistory(t, res)
		return
	}
	t.Fatal("lost update never manifested in 10 seeds")
}

// assertVerdictIndexesHistory proves the sharded counterexample carries
// global stream positions, not shard-local ones: every implicated
// transaction id must index the assembled history AND touch the key it
// is implicated over.
func assertVerdictIndexesHistory(t *testing.T, res *StreamResult) {
	t.Helper()
	touches := func(id int, key history.Key) {
		t.Helper()
		if id < 0 || id >= len(res.H.Txns) {
			t.Fatalf("counterexample txn %d outside the %d-txn history (shard-local id leaked?)", id, len(res.H.Txns))
		}
		for _, op := range res.H.Txns[id].Ops {
			if op.Key == key {
				return
			}
		}
		t.Fatalf("counterexample txn %d never touches %s: %s", id, key, res.H.Txns[id].String())
	}
	v := res.Verdict
	for _, a := range v.Anomalies {
		touches(a.Txn, a.Key)
	}
	if d := v.Divergence; d != nil {
		touches(d.Writer, d.Key)
		touches(d.Reader1, d.Key)
		touches(d.Reader2, d.Key)
	}
	for _, e := range v.Cycle {
		if e.From < 0 || e.From >= len(res.H.Txns) || e.To < 0 || e.To >= len(res.H.Txns) {
			t.Fatalf("cycle edge %v outside the %d-txn history", e, len(res.H.Txns))
		}
	}
}

// TestRunStreamShardedWindowed: per-shard epoch compaction keeps every
// component's checker bounded while the merged verdict stays clean; the
// compaction stats are summed across shards.
func TestRunStreamShardedWindowed(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 6, Txns: 120, Objects: 4, Dist: workload.Uniform, Seed: 5, ReadOnlyFrac: 0.2,
		Tenants: 3,
	})
	res := RunStream(context.Background(), kv.NewStore(kv.ModeSI), w, Config{Retries: 6, Shard: 3, Window: 32}, core.SI)
	if !res.Verdict.OK {
		t.Fatalf("clean windowed sharded run rejected: %s", res.Verdict.Explain())
	}
	if res.H != nil {
		t.Fatal("windowed run must not retain the history")
	}
	if res.Shards != 3 || res.Verdict.CompactedEpochs == 0 {
		t.Fatalf("shards %d, compacted epochs %d: expected 3 shards with compaction", res.Shards, res.Verdict.CompactedEpochs)
	}
}

// TestRunStreamShardedFallsBack: a single-component plan ignores the
// shard knob and verifies through the shared checker.
func TestRunStreamShardedFallsBack(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 4, Txns: 30, Objects: 4, Dist: workload.Uniform, Seed: 2, ReadOnlyFrac: 0.25,
	})
	res := RunStream(context.Background(), kv.NewStore(kv.ModeSI), w, Config{Retries: 6, Shard: 8}, core.SI)
	if !res.Verdict.OK || res.Shards != 0 {
		t.Fatalf("single-component plan must fall back: shards %d, verdict %v", res.Shards, res.Verdict.OK)
	}
}
