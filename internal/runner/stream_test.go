package runner

import (
	"context"
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// TestRunStreamCleanMatchesBatch verifies a healthy run online and
// cross-checks the streaming verdict against the batch checker over the
// collected history.
func TestRunStreamCleanMatchesBatch(t *testing.T) {
	for _, lvl := range []core.Level{core.SER, core.SI} {
		mode := kv.ModeSI
		if lvl == core.SER {
			mode = kv.ModeSerializable
		}
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 6, Txns: 50, Objects: 8, Dist: workload.Uniform, Seed: 7, ReadOnlyFrac: 0.25,
		})
		res := RunStream(context.Background(), kv.NewStore(mode), w, Config{Retries: 6}, lvl)
		if !res.Verdict.OK {
			t.Fatalf("%s: clean store rejected online: %s", lvl, res.Verdict.Explain())
		}
		if res.EarlyAborted || res.ViolationAt != 0 {
			t.Fatalf("%s: clean run flagged early abort: %+v", lvl, res)
		}
		batch := core.Check(res.H, lvl)
		if !batch.OK {
			t.Fatalf("%s: batch disagrees on the collected history: %s", lvl, batch.Explain())
		}
		if res.Committed == 0 || res.H == nil {
			t.Fatalf("%s: empty run", lvl)
		}
	}
}

// TestRunStreamSurfacesViolationMidRun injects the lost-update bug with a
// workload large enough that the violation must surface well before the
// plan is exhausted, stopping the sessions early.
func TestRunStreamSurfacesViolationMidRun(t *testing.T) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	for seed := int64(1); seed <= 10; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 400, Objects: 2, Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.1,
		})
		res := RunStream(context.Background(), bug.NewStore(seed), w, Config{Retries: 4}, core.SI)
		if res.Verdict.OK {
			continue // bug did not manifest under this seed; try the next
		}
		if res.ViolationAt == 0 {
			t.Fatal("violation found but ViolationAt not recorded")
		}
		// The batch checker must agree on the collected (prefix) history.
		if batch := core.CheckSI(res.H); batch.OK {
			t.Fatalf("seed %d: batch accepts the history the stream rejected", seed)
		}
		planned := 0
		for _, specs := range w.Sessions {
			planned += len(specs)
		}
		if !res.EarlyAborted {
			t.Fatalf("seed %d: 3200-txn plan with a hot lost-update bug should abort early (committed %d of %d)",
				seed, res.Committed, planned)
		}
		t.Logf("seed %d: violation at txn %d, committed %d of %d planned", seed, res.ViolationAt, res.Committed, planned)
		return
	}
	t.Fatal("lost update never manifested in 10 seeds")
}

// TestRunStreamKeepsAbortedRecords checks DropAborted=false default keeps
// aborted attempts in the collected history (needed for G1a).
func TestRunStreamKeepsAbortedRecords(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 8, Txns: 60, Objects: 2, Dist: workload.Uniform, Seed: 3, ReadOnlyFrac: 0,
	})
	res := RunStream(context.Background(), kv.NewStore(kv.ModeSerializable), w, Config{Retries: 2}, core.SER)
	if res.Aborted == 0 {
		t.Skip("no aborts under this seed")
	}
	aborted := 0
	for i := range res.H.Txns {
		if !res.H.Txns[i].Committed {
			aborted++
		}
	}
	if aborted != res.Aborted {
		t.Fatalf("history records %d aborted, runner counted %d", aborted, res.Aborted)
	}
}

// TestRunStreamHonorsCancellation cancels the stream context mid-run and
// asserts the sessions stop early with the context error recorded.
func TestRunStreamHonorsCancellation(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 8, Txns: 400, Objects: 8, Dist: workload.Uniform, Seed: 11,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunStream(ctx, kv.NewStore(kv.ModeSI), w, Config{Retries: 2}, core.SI)
	if res.Err == nil {
		t.Fatal("canceled run must record the context error")
	}
	planned := 0
	for _, specs := range w.Sessions {
		planned += len(specs)
	}
	if res.Committed >= planned {
		t.Fatalf("canceled run executed the whole plan (%d/%d)", res.Committed, planned)
	}
}

// TestRunStreamWindowed runs a clean streaming workload under a small
// compaction window: the verdict must stay OK, compaction must actually
// run, and the history must not be retained (that is the memory the
// window frees).
func TestRunStreamWindowed(t *testing.T) {
	for _, lvl := range []core.Level{core.SER, core.SI} {
		mode := kv.ModeSI
		if lvl == core.SER {
			mode = kv.ModeSerializable
		}
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 6, Txns: 100, Objects: 8, Dist: workload.Uniform, Seed: 11, ReadOnlyFrac: 0.25,
		})
		res := RunStream(context.Background(), kv.NewStore(mode), w, Config{Retries: 6, Window: 64}, lvl)
		if !res.Verdict.OK {
			t.Fatalf("%s: clean store rejected under window: %s", lvl, res.Verdict.Explain())
		}
		if res.H != nil {
			t.Fatalf("%s: windowed run must not retain the history", lvl)
		}
		if res.Verdict.CompactedEpochs == 0 || res.Verdict.CompactedTxns == 0 {
			t.Fatalf("%s: window set but no compaction ran: %+v", lvl, res.Verdict)
		}
	}
}

// TestRunStreamWindowedStillCatchesViolation: the compacting stream must
// flag an injected lost update exactly like the unbounded stream.
func TestRunStreamWindowedStillCatchesViolation(t *testing.T) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	caught := false
	for seed := int64(1); seed <= 10 && !caught; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 400, Objects: 2, Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.1,
		})
		res := RunStream(context.Background(), bug.NewStore(seed), w, Config{Retries: 4, Window: 128}, core.SI)
		if res.Verdict.OK {
			continue
		}
		caught = true
		if res.ViolationAt == 0 {
			t.Fatal("violation found but ViolationAt not recorded")
		}
		if !res.EarlyAborted {
			t.Fatal("violation must stop the sessions early")
		}
	}
	if !caught {
		t.Fatal("lost-update bug never manifested in 10 seeds")
	}
}
