// Package sat implements the constraint solver that the Cobra and PolySI
// baselines delegate to — a from-scratch stand-in for MonoSAT's "SAT
// modulo monotonic theories" (Bayless et al.). Problems are sets of binary
// constraints: each constraint activates one of two edge sets in a
// dependency graph, and the theory requires the union of known and chosen
// edges to be acyclic (plain acyclicity for serializability; acyclicity of
// the (base ; rw?) composition for snapshot isolation).
//
// The solver is a conflict-directed backjumping (CBJ) search with nogood
// learning: a theory conflict names the decision levels whose edges lie on
// the offending cycle; branches whose level is absent from the conflict
// set are skipped wholesale, and conflict sets are learned as nogoods that
// prune later branches. The search is complete: Solve reports Sat=false
// only when no orientation of the constraints satisfies the theory.
package sat

import (
	"context"
	"fmt"
)

// Kind labels an edge for the SI composition theory; the plain acyclicity
// theory ignores it.
type Kind uint8

// Edge kinds.
const (
	Base Kind = iota // SO / WR / WW edges
	RW               // anti-dependency edges (composed on the right in SI)
)

// Edge is a directed edge with a theory kind.
type Edge struct {
	From, To int
	Kind     Kind
}

// Constraint activates edge set A when its variable is assigned true and
// edge set B when assigned false.
type Constraint struct {
	A, B []Edge
}

// Result reports the outcome and search statistics.
type Result struct {
	Sat       bool
	Choices   []bool // per-constraint orientation when Sat
	Decisions int
	Conflicts int
	Learned   int
}

// Theory abstracts the graph property maintained during search.
type Theory interface {
	// Push activates edges at the given decision level; level 0 holds the
	// known edges, constraint i is decided at level i+1.
	Push(level int, edges []Edge)
	// Pop deactivates every level > keep.
	Pop(keep int)
	// Check reports whether the active graph satisfies the property; when
	// it does not, it returns the set of decision levels whose edges
	// participate in the violation (level 0 may be included).
	Check() (conflict []int, ok bool)
}

// solver carries the CBJ search state. Constraint i is assigned at
// decision level i+1 (static order), which keeps level→variable mapping
// trivial.
type solver struct {
	cons    []Constraint
	th      Theory
	assign  []int8 // +1 true, -1 false, 0 unassigned
	learned [][]lit
	res     Result
	ctx     context.Context
	err     error // ctx cancellation, checked every ctxCheckMask decisions
}

// ctxCheckMask sets the cancellation polling period: the context is
// consulted once every 64 decisions, so a deadline stops an exponential
// search within a bounded number of theory checks.
const ctxCheckMask = 63

// canceled polls the context; once it fires, every dfs frame unwinds.
func (s *solver) canceled() bool {
	if s.err != nil {
		return true
	}
	if s.res.Decisions&ctxCheckMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return true
		}
	}
	return false
}

// lit is one entry of a learned nogood: variable v took value val.
type lit struct {
	v   int
	val int8
}

// Solve searches for an orientation of cons whose activated edges, unioned
// with known, satisfy the theory built by mk. n is the node count.
func Solve(n int, known []Edge, cons []Constraint, mk func(n int) Theory) Result {
	res, _ := SolveCtx(context.Background(), n, known, cons, mk)
	return res
}

// SolveCtx is Solve under a context: the search polls ctx every few
// decisions and unwinds with the context's error when it fires, so a
// deadline bounds even an exponential search. The partial Result carries
// the statistics accumulated up to the cancellation point.
func SolveCtx(ctx context.Context, n int, known []Edge, cons []Constraint, mk func(n int) Theory) (Result, error) {
	checkRange(n, known)
	for _, c := range cons {
		checkRange(n, c.A)
		checkRange(n, c.B)
	}
	s := &solver{
		cons:   cons,
		th:     mk(n),
		assign: make([]int8, len(cons)),
		ctx:    ctx,
	}
	if err := ctx.Err(); err != nil {
		return s.res, err
	}
	s.th.Push(0, known)
	if _, ok := s.th.Check(); !ok {
		return s.res, nil // known edges alone violate the theory
	}
	solved, _ := s.dfs(0)
	if s.err != nil {
		return s.res, s.err
	}
	if solved {
		s.res.Sat = true
		s.res.Choices = make([]bool, len(cons))
		for i, a := range s.assign {
			s.res.Choices[i] = a > 0
		}
	}
	return s.res, nil
}

// dfs assigns constraint `v` (at decision level v+1) and recurses. On
// failure it returns the conflict set: the decision levels responsible.
// If the current level is not in a branch's conflict set, flipping this
// variable cannot help and the conflict propagates up unchanged (the
// backjump).
func (s *solver) dfs(v int) (bool, []int) {
	if v == len(s.cons) {
		return true, nil
	}
	if s.canceled() {
		return false, nil
	}
	level := v + 1
	var union []int
	for _, val := range [2]int8{1, -1} {
		var confl []int
		if cl, blocked := s.blockedBy(v, val); blocked {
			// A learned nogood already forbids this assignment; its
			// levels form the conflict set.
			confl = levelsOf(cl, v)
			confl = append(confl, level)
		} else {
			s.assign[v] = val
			s.res.Decisions++
			s.th.Push(level, chosen(s.cons[v], val))
			c, ok := s.th.Check()
			if ok {
				solved, sub := s.dfs(v + 1)
				if solved {
					return true, nil
				}
				confl = sub
			} else {
				s.res.Conflicts++
				confl = c
				s.learn(confl, v)
			}
			s.th.Pop(level - 1)
			s.assign[v] = 0
		}
		if !containsLevel(confl, level) {
			// This decision is irrelevant to the failure: backjump.
			return false, confl
		}
		union = mergeLevels(union, removeLevel(confl, level))
	}
	return false, union
}

// learn records the conflicting assignment combination as a nogood.
func (s *solver) learn(levels []int, cur int) {
	var cl []lit
	for _, l := range levels {
		if l == 0 {
			continue
		}
		vv := l - 1
		if vv > cur || s.assign[vv] == 0 {
			continue
		}
		cl = append(cl, lit{v: vv, val: s.assign[vv]})
	}
	if len(cl) == 0 || len(cl) > 8 {
		return // keep only short, high-value nogoods
	}
	s.learned = append(s.learned, cl)
	s.res.Learned++
}

// blockedBy reports whether assigning v:=val completes a learned nogood
// under the current assignment, returning the nogood.
func (s *solver) blockedBy(v int, val int8) ([]lit, bool) {
	for _, cl := range s.learned {
		all := true
		touches := false
		for _, l := range cl {
			switch {
			case l.v == v:
				touches = true
				if l.val != val {
					all = false
				}
			case s.assign[l.v] != l.val:
				all = false
			}
			if !all {
				break
			}
		}
		if all && touches {
			return cl, true
		}
	}
	return nil, false
}

// levelsOf maps a nogood's variables (other than cur) to decision levels.
func levelsOf(cl []lit, cur int) []int {
	var out []int
	for _, l := range cl {
		if l.v != cur {
			out = append(out, l.v+1)
		}
	}
	return out
}

func chosen(c Constraint, val int8) []Edge {
	if val > 0 {
		return c.A
	}
	return c.B
}

func containsLevel(ls []int, l int) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

func mergeLevels(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, l := range b {
		if !containsLevel(out, l) {
			out = append(out, l)
		}
	}
	return out
}

func removeLevel(ls []int, l int) []int {
	var out []int
	for _, x := range ls {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

// SolveAcyclic solves with the plain acyclicity theory (the Cobra /
// serializability condition).
func SolveAcyclic(n int, known []Edge, cons []Constraint) Result {
	res, _ := SolveAcyclicCtx(context.Background(), n, known, cons)
	return res
}

// SolveAcyclicCtx is SolveAcyclic under a context deadline.
func SolveAcyclicCtx(ctx context.Context, n int, known []Edge, cons []Constraint) (Result, error) {
	return SolveCtx(ctx, n, known, cons, func(n int) Theory { return newAcyclicTheoryCtx(ctx, n) })
}

// SolveSI solves with the snapshot-isolation composition theory: the graph
// (base ; rw?) over the active edges must be acyclic.
func SolveSI(n int, known []Edge, cons []Constraint) Result {
	res, _ := SolveSICtx(context.Background(), n, known, cons)
	return res
}

// SolveSICtx is SolveSI under a context deadline.
func SolveSICtx(ctx context.Context, n int, known []Edge, cons []Constraint) (Result, error) {
	return SolveCtx(ctx, n, known, cons, func(n int) Theory { return newSITheoryCtx(ctx, n) })
}

func checkRange(n int, es []Edge) {
	for _, e := range es {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			panic(fmt.Sprintf("sat: edge %v out of range [0,%d)", e, n))
		}
	}
}
