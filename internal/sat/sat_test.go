package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func be(a, b int) Edge  { return Edge{From: a, To: b, Kind: Base} }
func rwe(a, b int) Edge { return Edge{From: a, To: b, Kind: RW} }

func TestNoConstraints(t *testing.T) {
	r := SolveAcyclic(3, []Edge{be(0, 1), be(1, 2)}, nil)
	if !r.Sat {
		t.Fatal("acyclic known graph with no constraints must be sat")
	}
	r = SolveAcyclic(2, []Edge{be(0, 1), be(1, 0)}, nil)
	if r.Sat {
		t.Fatal("cyclic known graph must be unsat")
	}
}

func TestSingleConstraintFreeChoice(t *testing.T) {
	r := SolveAcyclic(2, nil, []Constraint{{A: []Edge{be(0, 1)}, B: []Edge{be(1, 0)}}})
	if !r.Sat || len(r.Choices) != 1 {
		t.Fatalf("result %+v", r)
	}
}

func TestConstraintForcedByKnown(t *testing.T) {
	// Known 0->1 forces the constraint to B (A would close a cycle).
	r := SolveAcyclic(2, []Edge{be(0, 1)}, []Constraint{{A: []Edge{be(1, 0)}, B: []Edge{be(0, 1)}}})
	if !r.Sat {
		t.Fatal("must be sat via option B")
	}
	if r.Choices[0] {
		t.Fatal("option A closes a cycle; solver must pick B")
	}
}

func TestUnsatBothOptionsCycle(t *testing.T) {
	cons := []Constraint{
		{A: []Edge{be(0, 1)}, B: []Edge{be(0, 1)}},
		{A: []Edge{be(1, 0)}, B: []Edge{be(1, 0)}},
	}
	r := SolveAcyclic(2, nil, cons)
	if r.Sat {
		t.Fatal("must be unsat")
	}
	if r.Conflicts == 0 {
		t.Fatal("expected recorded conflicts")
	}
}

func TestChainedConstraints(t *testing.T) {
	// 4 nodes; constraints form a chain that only one global orientation
	// satisfies given known edges 0->1->2->3 and a back pressure.
	known := []Edge{be(0, 1), be(1, 2), be(2, 3)}
	cons := []Constraint{
		{A: []Edge{be(3, 0)}, B: []Edge{be(0, 3)}}, // A impossible
		{A: []Edge{be(1, 3)}, B: []Edge{be(3, 1)}}, // B impossible
	}
	r := SolveAcyclic(4, known, cons)
	if !r.Sat || r.Choices[0] || !r.Choices[1] {
		t.Fatalf("result %+v", r)
	}
}

func TestBackjumpScenario(t *testing.T) {
	// Early irrelevant decisions followed by an unsat core among later
	// constraints; CBJ must still answer unsat.
	var cons []Constraint
	for i := 0; i < 6; i++ {
		a, b := 2*i+2, 2*i+3
		cons = append(cons, Constraint{A: []Edge{be(a, b)}, B: []Edge{be(b, a)}})
	}
	cons = append(cons,
		Constraint{A: []Edge{be(0, 1)}, B: []Edge{be(0, 1)}},
		Constraint{A: []Edge{be(1, 0)}, B: []Edge{be(1, 0)}},
	)
	r := SolveAcyclic(14, nil, cons)
	if r.Sat {
		t.Fatal("must be unsat")
	}
	// CBJ should not need to explore all 2^6 prefixes.
	if r.Decisions > 64 {
		t.Fatalf("CBJ explored %d decisions; expected far fewer", r.Decisions)
	}
}

func TestSIDivergenceUnsat(t *testing.T) {
	// The DIVERGENCE pattern of Figure 3: T1=0 writes x; T2=1 and T3=2
	// both read it and write x. Whatever the WW orientation between 1 and
	// 2, the composed graph has a cycle, so SI must be unsat.
	known := []Edge{be(0, 1), be(0, 2)} // WR edges (base)
	cons := []Constraint{{
		A: []Edge{be(1, 2), rwe(2, 2)}, // placeholder shape replaced below
	}}
	// Proper encoding: orientation A: WW 1->2 plus RW 2->2? No - readers
	// of T1 are {1,2}: A: WW(1->2) and RW(2->2) is degenerate; build it
	// the way polygraph does: reader r of u gets RW r->w for the pair
	// (u=1, w=2): A = WW 1->2, RW from readers of 1 (none) ... the
	// divergence cycle comes from readers of 0: orientation 1->2 makes
	// reader 2 of txn 0 anti-depend on 2? The full encoding lives in
	// polysi; here we hand-build the two options:
	cons = []Constraint{{
		// A: WW(x) 1->2; readers of 0 on x = {1,2}; overwriters per this
		// orientation: 1 then 2. RW edges: 2 reads 0, 1 overwrites 0:
		// RW 2->1; also RW 1->... 1 reads 0 and 2 overwrites 0: RW 1->2.
		A: []Edge{be(1, 2), rwe(1, 2), rwe(2, 1)},
		B: []Edge{be(2, 1), rwe(1, 2), rwe(2, 1)},
	}}
	r := SolveSI(3, known, cons)
	if r.Sat {
		t.Fatal("divergence must be unsat under SI")
	}
}

func TestSIWriteSkewSat(t *testing.T) {
	// Write skew: RW edges both ways between 1 and 2, but no base edge
	// entering them, so the composition has no cycle: SI-sat.
	known := []Edge{be(0, 1), be(0, 2), rwe(1, 2), rwe(2, 1)}
	r := SolveSI(3, known, nil)
	if !r.Sat {
		t.Fatal("write skew must be SI-sat")
	}
	// But under plain acyclicity (SER) the same edges form a cycle.
	if SolveAcyclic(3, known, nil).Sat {
		t.Fatal("write skew must be SER-unsat")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	SolveAcyclic(1, []Edge{be(0, 5)}, nil)
}

// bruteAcyclic enumerates all orientations.
func bruteAcyclic(n int, known []Edge, cons []Constraint) bool {
	var try func(i int, edges []Edge) bool
	isAcyclic := func(edges []Edge) bool {
		indeg := make([]int, n)
		out := make([][]int, n)
		for _, e := range edges {
			out[e.From] = append(out[e.From], e.To)
			indeg[e.To]++
		}
		var q []int
		for v := 0; v < n; v++ {
			if indeg[v] == 0 {
				q = append(q, v)
			}
		}
		seen := 0
		for len(q) > 0 {
			v := q[len(q)-1]
			q = q[:len(q)-1]
			seen++
			for _, w := range out[v] {
				indeg[w]--
				if indeg[w] == 0 {
					q = append(q, w)
				}
			}
		}
		return seen == n
	}
	try = func(i int, edges []Edge) bool {
		if i == len(cons) {
			return isAcyclic(edges)
		}
		if try(i+1, append(edges, cons[i].A...)) {
			return true
		}
		return try(i+1, append(append([]Edge(nil), edges...), cons[i].B...))
	}
	return try(0, append([]Edge(nil), known...))
}

// bruteSI enumerates orientations, checking composed acyclicity.
func bruteSI(n int, known []Edge, cons []Constraint) bool {
	composedAcyclic := func(edges []Edge) bool {
		rwOut := make([][]int, n)
		var base []Edge
		for _, e := range edges {
			if e.Kind == RW {
				rwOut[e.From] = append(rwOut[e.From], e.To)
			} else {
				base = append(base, e)
			}
		}
		out := make([][]int, n)
		indeg := make([]int, n)
		add := func(a, b int) {
			out[a] = append(out[a], b)
			indeg[b]++
		}
		for _, b := range base {
			add(b.From, b.To)
			for _, c := range rwOut[b.To] {
				add(b.From, c)
			}
		}
		var q []int
		for v := 0; v < n; v++ {
			if indeg[v] == 0 {
				q = append(q, v)
			}
		}
		seen := 0
		for len(q) > 0 {
			v := q[len(q)-1]
			q = q[:len(q)-1]
			seen++
			for _, w := range out[v] {
				indeg[w]--
				if indeg[w] == 0 {
					q = append(q, w)
				}
			}
		}
		return seen == n
	}
	var try func(i int, edges []Edge) bool
	try = func(i int, edges []Edge) bool {
		if i == len(cons) {
			return composedAcyclic(edges)
		}
		if try(i+1, append(edges, cons[i].A...)) {
			return true
		}
		return try(i+1, append(append([]Edge(nil), edges...), cons[i].B...))
	}
	return try(0, append([]Edge(nil), known...))
}

func randomProblem(rng *rand.Rand) (int, []Edge, []Constraint) {
	n := 3 + rng.Intn(5)
	var known []Edge
	for i := 0; i < rng.Intn(2*n); i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			kind := Base
			if rng.Intn(4) == 0 {
				kind = RW
			}
			known = append(known, Edge{From: a, To: b, Kind: kind})
		}
	}
	k := rng.Intn(8)
	var cons []Constraint
	for i := 0; i < k; i++ {
		mk := func() []Edge {
			var es []Edge
			for j := 0; j <= rng.Intn(2); j++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					kind := Base
					if rng.Intn(3) == 0 {
						kind = RW
					}
					es = append(es, Edge{From: a, To: b, Kind: kind})
				}
			}
			return es
		}
		cons = append(cons, Constraint{A: mk(), B: mk()})
	}
	return n, known, cons
}

func TestPropertySolveAcyclicMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, known, cons := randomProblem(rng)
		want := bruteAcyclic(n, known, cons)
		got := SolveAcyclic(n, known, cons).Sat
		if want != got {
			t.Logf("n=%d known=%v cons=%v want=%v got=%v", n, known, cons, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySolveSIMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, known, cons := randomProblem(rng)
		want := bruteSI(n, known, cons)
		got := SolveSI(n, known, cons).Sat
		if want != got {
			t.Logf("n=%d known=%v cons=%v want=%v got=%v", n, known, cons, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSatChoicesSatisfyTheory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, known, cons := randomProblem(rng)
		r := SolveAcyclic(n, known, cons)
		if !r.Sat {
			return true
		}
		edges := append([]Edge(nil), known...)
		for i, c := range cons {
			if r.Choices[i] {
				edges = append(edges, c.A...)
			} else {
				edges = append(edges, c.B...)
			}
		}
		return bruteAcyclic(n, edges, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
