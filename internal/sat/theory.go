package sat

import (
	"context"

	"mtc/internal/graph"
)

// acyclicTheory maintains a directed graph under push/pop of edge levels
// and checks plain acyclicity incrementally: because the graph was acyclic
// before the newest push, any new cycle must pass through a newly added
// edge, so Check only searches from those.
type acyclicTheory struct {
	n       int
	out     [][]aEdge
	touched [][]int  // per level: from-nodes in append order
	pushed  [][]Edge // per level: the edges, for targeted checking
	levels  []int    // stack of pushed level numbers
	full    bool     // next Check scans the whole graph (first push)
	// base caches the reachability closure of the level-0 (known) edges,
	// built lazily on the first targeted search: most conflict paths run
	// through the known graph, so an O(1) bitset probe answers them with
	// the minimal conflict set {0} and skips the DFS over the whole active
	// graph. Pop never removes level 0, so the cache survives the search;
	// a re-push of level 0 invalidates it. The build polls ctx (the
	// solver's), so cancellation interrupts even the O(n·m/64) closure
	// pass; the search then falls back to plain DFS until the solver's
	// own poll unwinds it.
	ctx       context.Context
	base      *graph.Closure
	baseBuilt bool
	// Epoch-stamped DFS scratch.
	epoch    int
	seen     []int
	parent   []aEdge
	parentOf []int
	stack    []int
}

// levelZeroClosure builds the closure of the edges tagged level 0 in an
// adjacency of (to, level) pairs; nil when the level-0 graph is cyclic
// (the search then never consults the cache — Check already failed) or
// when ctx fired mid-build (the caller marks the cache built either way,
// so a canceled solve does not retry the closure on every search).
func levelZeroClosure(ctx context.Context, n int, out func(v int) []aEdge) *graph.Closure {
	adj := make([][]int, n)
	//mtc:cancellation-ok linear adjacency copy; graph.NewClosure below polls ctx
	for v := 0; v < n; v++ {
		for _, e := range out(v) {
			if e.level == 0 {
				adj[v] = append(adj[v], e.to)
			}
		}
	}
	c, ok, err := graph.NewClosure(ctx, n, adj, 1)
	if err != nil || !ok {
		return nil
	}
	return c
}

// theoryCtx defaults a nil theory context: the direct constructors used
// by tests carry no context.
func theoryCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

type aEdge struct {
	to    int
	level int
}

func newAcyclicTheory(n int) Theory { return newAcyclicTheoryCtx(context.Background(), n) }

// newAcyclicTheoryCtx carries the solver's context into the theory so
// the lazily built level-0 closure stays cancellable.
func newAcyclicTheoryCtx(ctx context.Context, n int) Theory {
	return &acyclicTheory{
		n:        n,
		ctx:      theoryCtx(ctx),
		out:      make([][]aEdge, n),
		seen:     make([]int, n),
		parent:   make([]aEdge, n),
		parentOf: make([]int, n),
	}
}

func (t *acyclicTheory) Push(level int, edges []Edge) {
	var touched []int
	for _, e := range edges {
		t.out[e.From] = append(t.out[e.From], aEdge{to: e.To, level: level})
		touched = append(touched, e.From)
	}
	t.touched = append(t.touched, touched)
	t.pushed = append(t.pushed, edges)
	t.levels = append(t.levels, level)
	if level == 0 {
		t.full = true
		t.base, t.baseBuilt = nil, false
	}
}

func (t *acyclicTheory) Pop(keep int) {
	for len(t.levels) > 0 && t.levels[len(t.levels)-1] > keep {
		idx := len(t.levels) - 1
		touched := t.touched[idx]
		for i := len(touched) - 1; i >= 0; i-- {
			from := touched[i]
			t.out[from] = t.out[from][:len(t.out[from])-1]
		}
		t.touched = t.touched[:idx]
		t.pushed = t.pushed[:idx]
		t.levels = t.levels[:idx]
	}
}

// Check verifies acyclicity. After the initial push it runs a full Kahn
// scan; afterwards it only DFSes from the targets of newly pushed edges.
func (t *acyclicTheory) Check() ([]int, bool) {
	if t.full {
		t.full = false
		if t.kahnAcyclic() {
			return nil, true
		}
		return []int{0}, false
	}
	if len(t.pushed) == 0 {
		return nil, true
	}
	for _, e := range t.pushed[len(t.pushed)-1] {
		if lvls, found := t.findPath(e.To, e.From); found {
			// Path e.To ~> e.From plus edge e closes a cycle.
			lvls = mergeLevels(lvls, []int{t.levels[len(t.levels)-1]})
			return lvls, false
		}
	}
	return nil, true
}

// kahnAcyclic runs an O(n+m) topological check.
func (t *acyclicTheory) kahnAcyclic() bool {
	indeg := make([]int, t.n)
	for u := 0; u < t.n; u++ {
		for _, e := range t.out[u] {
			indeg[e.to]++
		}
	}
	queue := make([]int, 0, t.n)
	for v := 0; v < t.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, e := range t.out[v] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	return seen == t.n
}

// findPath DFSes from src to dst and, when found, returns the set of edge
// levels on the path. A path through the known edges alone is answered
// from the cached level-0 closure without searching: the conflict set is
// then exactly {0}, the strongest (smallest) clause a path can yield.
func (t *acyclicTheory) findPath(src, dst int) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	if !t.baseBuilt {
		t.base = levelZeroClosure(t.ctx, t.n, func(v int) []aEdge { return t.out[v] })
		t.baseBuilt = true
	}
	if t.base != nil && t.base.Reach(src, dst) {
		return []int{0}, true
	}
	t.epoch++
	t.seen[src] = t.epoch
	stack := t.stack[:0]
	stack = append(stack, src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[v] {
			if t.seen[e.to] == t.epoch {
				continue
			}
			t.seen[e.to] = t.epoch
			t.parent[e.to] = e
			t.parentOf[e.to] = v
			if e.to == dst {
				var lvls []int
				for x := dst; x != src; x = t.parentOf[x] {
					lvls = mergeLevels(lvls, []int{t.parent[x].level})
				}
				t.stack = stack
				return lvls, true
			}
			stack = append(stack, e.to)
		}
	}
	t.stack = stack
	return nil, false
}

// siTheory checks acyclicity of (base ; rw?) over the active edges: the
// snapshot isolation condition of Definition 6. It maintains the composed
// graph incrementally under push/pop: a new base edge (a,b) contributes
// the composed edges (a,b) and (a,c) for every active rw edge (b,c); a
// new rw edge (b,c) contributes (a,c) for every active base edge (a,b).
// Because the composed graph was acyclic before each push, Check only
// searches from the newly added composed edges.
type siTheory struct {
	n      int
	baseIn [][]tEdge // incoming base edges per node
	rwOut  [][]tEdge // outgoing rw edges per node
	comp   [][]cEdge // composed adjacency
	marks  []siMark
	// base caches the closure of the level-0 composed graph (see
	// acyclicTheory.base): composed edges whose constituents are all known
	// edges. A probe answering a search yields the conflict set {0}. The
	// build polls ctx (the solver's) so it stays cancellable.
	ctx       context.Context
	base      *graph.Closure
	baseBuilt bool
	// Epoch-stamped DFS scratch, reused across Checks to avoid an O(n)
	// allocation per searched edge.
	epoch      int
	seen       []int
	parentEdge []cEdge
	parentNode []int
	stack      []int
}

type tEdge struct {
	from, to, level int
}

// cEdge is a composed edge: base, or base followed by one rw hop. lvl2 is
// -1 for pure base edges.
type cEdge struct {
	to         int
	lvl1, lvl2 int
}

// siMark records everything a push appended, for Pop.
type siMark struct {
	level    int
	baseIns  []int     // nodes whose baseIn grew, in order
	rwOuts   []int     // nodes whose rwOut grew, in order
	compAt   []int     // nodes whose comp grew, in order
	newEdges []newComp // the composed edges added (for targeted Check)
}

type newComp struct {
	from int
	e    cEdge
}

func newSITheory(n int) Theory { return newSITheoryCtx(context.Background(), n) }

// newSITheoryCtx carries the solver's context into the theory so the
// lazily built level-0 composed closure stays cancellable.
func newSITheoryCtx(ctx context.Context, n int) Theory {
	return &siTheory{
		n:          n,
		ctx:        theoryCtx(ctx),
		baseIn:     make([][]tEdge, n),
		rwOut:      make([][]tEdge, n),
		comp:       make([][]cEdge, n),
		seen:       make([]int, n),
		parentEdge: make([]cEdge, n),
		parentNode: make([]int, n),
	}
}

func (t *siTheory) addComp(m *siMark, from int, e cEdge) {
	t.comp[from] = append(t.comp[from], e)
	m.compAt = append(m.compAt, from)
	m.newEdges = append(m.newEdges, newComp{from: from, e: e})
}

func (t *siTheory) Push(level int, edges []Edge) {
	m := siMark{level: level}
	for _, e := range edges {
		if e.Kind == RW {
			te := tEdge{from: e.From, to: e.To, level: level}
			t.rwOut[e.From] = append(t.rwOut[e.From], te)
			m.rwOuts = append(m.rwOuts, e.From)
			// Compose with every active base edge ending at e.From.
			for _, b := range t.baseIn[e.From] {
				t.addComp(&m, b.from, cEdge{to: e.To, lvl1: b.level, lvl2: level})
			}
			continue
		}
		te := tEdge{from: e.From, to: e.To, level: level}
		t.baseIn[e.To] = append(t.baseIn[e.To], te)
		m.baseIns = append(m.baseIns, e.To)
		// Identity part of rw?.
		t.addComp(&m, e.From, cEdge{to: e.To, lvl1: level, lvl2: -1})
		// Compose with every active rw edge leaving e.To.
		for _, r := range t.rwOut[e.To] {
			t.addComp(&m, e.From, cEdge{to: r.to, lvl1: level, lvl2: r.level})
		}
	}
	t.marks = append(t.marks, m)
	if level == 0 {
		t.base, t.baseBuilt = nil, false
	}
}

func (t *siTheory) Pop(keep int) {
	for len(t.marks) > 0 && t.marks[len(t.marks)-1].level > keep {
		m := t.marks[len(t.marks)-1]
		t.marks = t.marks[:len(t.marks)-1]
		for i := len(m.compAt) - 1; i >= 0; i-- {
			v := m.compAt[i]
			t.comp[v] = t.comp[v][:len(t.comp[v])-1]
		}
		for i := len(m.baseIns) - 1; i >= 0; i-- {
			v := m.baseIns[i]
			t.baseIn[v] = t.baseIn[v][:len(t.baseIn[v])-1]
		}
		for i := len(m.rwOuts) - 1; i >= 0; i-- {
			v := m.rwOuts[i]
			t.rwOut[v] = t.rwOut[v][:len(t.rwOut[v])-1]
		}
	}
}

// Check searches for a composed cycle through the newest push's edges.
func (t *siTheory) Check() ([]int, bool) {
	if len(t.marks) == 0 {
		return nil, true
	}
	m := &t.marks[len(t.marks)-1]
	for _, nc := range m.newEdges {
		if lvls, found := t.findCompPath(nc.e.to, nc.from); found {
			return mergeLevels(lvls, levelsOfCEdge(nc.e)), false
		}
	}
	return nil, true
}

// findCompPath DFSes the composed graph from src to dst, returning the
// levels of the edges on the path. Paths running entirely through the
// level-0 composed edges are answered from the cached closure with the
// minimal conflict set {0}.
func (t *siTheory) findCompPath(src, dst int) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	if !t.baseBuilt {
		t.base = t.levelZeroCompClosure()
		t.baseBuilt = true
	}
	if t.base != nil && t.base.Reach(src, dst) {
		return []int{0}, true
	}
	t.epoch++
	t.seen[src] = t.epoch
	stack := t.stack[:0]
	stack = append(stack, src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.comp[v] {
			if t.seen[e.to] == t.epoch {
				continue
			}
			t.seen[e.to] = t.epoch
			t.parentEdge[e.to] = e
			t.parentNode[e.to] = v
			if e.to == dst {
				var lvls []int
				for x := dst; x != src; x = t.parentNode[x] {
					lvls = mergeLevels(lvls, levelsOfCEdge(t.parentEdge[x]))
				}
				t.stack = stack
				return lvls, true
			}
			stack = append(stack, e.to)
		}
	}
	t.stack = stack
	return nil, false
}

// levelZeroCompClosure builds the closure over the composed edges whose
// constituents are all level-0 (known) edges; nil when that graph is
// cyclic (then the initial full Check already reported unsat) or the
// build was canceled.
func (t *siTheory) levelZeroCompClosure() *graph.Closure {
	adj := make([][]int, t.n)
	for v := 0; v < t.n; v++ {
		for _, e := range t.comp[v] {
			if e.lvl1 == 0 && e.lvl2 <= 0 {
				adj[v] = append(adj[v], e.to)
			}
		}
	}
	c, ok, err := graph.NewClosure(t.ctx, t.n, adj, 1)
	if err != nil || !ok {
		return nil
	}
	return c
}

func levelsOfCEdge(e cEdge) []int {
	if e.lvl2 < 0 {
		return []int{e.lvl1}
	}
	return mergeLevels([]int{e.lvl1}, []int{e.lvl2})
}
