package sat

// acyclicTheory maintains a directed graph under push/pop of edge levels
// and checks plain acyclicity incrementally: because the graph was acyclic
// before the newest push, any new cycle must pass through a newly added
// edge, so Check only searches from those.
type acyclicTheory struct {
	n       int
	out     [][]aEdge
	touched [][]int  // per level: from-nodes in append order
	pushed  [][]Edge // per level: the edges, for targeted checking
	levels  []int    // stack of pushed level numbers
	full    bool     // next Check scans the whole graph (first push)
	// Epoch-stamped DFS scratch.
	epoch    int
	seen     []int
	parent   []aEdge
	parentOf []int
	stack    []int
}

type aEdge struct {
	to    int
	level int
}

func newAcyclicTheory(n int) Theory {
	return &acyclicTheory{
		n:        n,
		out:      make([][]aEdge, n),
		seen:     make([]int, n),
		parent:   make([]aEdge, n),
		parentOf: make([]int, n),
	}
}

func (t *acyclicTheory) Push(level int, edges []Edge) {
	var touched []int
	for _, e := range edges {
		t.out[e.From] = append(t.out[e.From], aEdge{to: e.To, level: level})
		touched = append(touched, e.From)
	}
	t.touched = append(t.touched, touched)
	t.pushed = append(t.pushed, edges)
	t.levels = append(t.levels, level)
	if level == 0 {
		t.full = true
	}
}

func (t *acyclicTheory) Pop(keep int) {
	for len(t.levels) > 0 && t.levels[len(t.levels)-1] > keep {
		idx := len(t.levels) - 1
		touched := t.touched[idx]
		for i := len(touched) - 1; i >= 0; i-- {
			from := touched[i]
			t.out[from] = t.out[from][:len(t.out[from])-1]
		}
		t.touched = t.touched[:idx]
		t.pushed = t.pushed[:idx]
		t.levels = t.levels[:idx]
	}
}

// Check verifies acyclicity. After the initial push it runs a full Kahn
// scan; afterwards it only DFSes from the targets of newly pushed edges.
func (t *acyclicTheory) Check() ([]int, bool) {
	if t.full {
		t.full = false
		if t.kahnAcyclic() {
			return nil, true
		}
		return []int{0}, false
	}
	if len(t.pushed) == 0 {
		return nil, true
	}
	for _, e := range t.pushed[len(t.pushed)-1] {
		if lvls, found := t.findPath(e.To, e.From); found {
			// Path e.To ~> e.From plus edge e closes a cycle.
			lvls = mergeLevels(lvls, []int{t.levels[len(t.levels)-1]})
			return lvls, false
		}
	}
	return nil, true
}

// kahnAcyclic runs an O(n+m) topological check.
func (t *acyclicTheory) kahnAcyclic() bool {
	indeg := make([]int, t.n)
	for u := 0; u < t.n; u++ {
		for _, e := range t.out[u] {
			indeg[e.to]++
		}
	}
	queue := make([]int, 0, t.n)
	for v := 0; v < t.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, e := range t.out[v] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	return seen == t.n
}

// findPath DFSes from src to dst and, when found, returns the set of edge
// levels on the path.
func (t *acyclicTheory) findPath(src, dst int) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	t.epoch++
	t.seen[src] = t.epoch
	stack := t.stack[:0]
	stack = append(stack, src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[v] {
			if t.seen[e.to] == t.epoch {
				continue
			}
			t.seen[e.to] = t.epoch
			t.parent[e.to] = e
			t.parentOf[e.to] = v
			if e.to == dst {
				var lvls []int
				for x := dst; x != src; x = t.parentOf[x] {
					lvls = mergeLevels(lvls, []int{t.parent[x].level})
				}
				t.stack = stack
				return lvls, true
			}
			stack = append(stack, e.to)
		}
	}
	t.stack = stack
	return nil, false
}

// siTheory checks acyclicity of (base ; rw?) over the active edges: the
// snapshot isolation condition of Definition 6. It maintains the composed
// graph incrementally under push/pop: a new base edge (a,b) contributes
// the composed edges (a,b) and (a,c) for every active rw edge (b,c); a
// new rw edge (b,c) contributes (a,c) for every active base edge (a,b).
// Because the composed graph was acyclic before each push, Check only
// searches from the newly added composed edges.
type siTheory struct {
	n      int
	baseIn [][]tEdge // incoming base edges per node
	rwOut  [][]tEdge // outgoing rw edges per node
	comp   [][]cEdge // composed adjacency
	marks  []siMark
	// Epoch-stamped DFS scratch, reused across Checks to avoid an O(n)
	// allocation per searched edge.
	epoch      int
	seen       []int
	parentEdge []cEdge
	parentNode []int
	stack      []int
}

type tEdge struct {
	from, to, level int
}

// cEdge is a composed edge: base, or base followed by one rw hop. lvl2 is
// -1 for pure base edges.
type cEdge struct {
	to         int
	lvl1, lvl2 int
}

// siMark records everything a push appended, for Pop.
type siMark struct {
	level    int
	baseIns  []int     // nodes whose baseIn grew, in order
	rwOuts   []int     // nodes whose rwOut grew, in order
	compAt   []int     // nodes whose comp grew, in order
	newEdges []newComp // the composed edges added (for targeted Check)
}

type newComp struct {
	from int
	e    cEdge
}

func newSITheory(n int) Theory {
	return &siTheory{
		n:          n,
		baseIn:     make([][]tEdge, n),
		rwOut:      make([][]tEdge, n),
		comp:       make([][]cEdge, n),
		seen:       make([]int, n),
		parentEdge: make([]cEdge, n),
		parentNode: make([]int, n),
	}
}

func (t *siTheory) addComp(m *siMark, from int, e cEdge) {
	t.comp[from] = append(t.comp[from], e)
	m.compAt = append(m.compAt, from)
	m.newEdges = append(m.newEdges, newComp{from: from, e: e})
}

func (t *siTheory) Push(level int, edges []Edge) {
	m := siMark{level: level}
	for _, e := range edges {
		if e.Kind == RW {
			te := tEdge{from: e.From, to: e.To, level: level}
			t.rwOut[e.From] = append(t.rwOut[e.From], te)
			m.rwOuts = append(m.rwOuts, e.From)
			// Compose with every active base edge ending at e.From.
			for _, b := range t.baseIn[e.From] {
				t.addComp(&m, b.from, cEdge{to: e.To, lvl1: b.level, lvl2: level})
			}
			continue
		}
		te := tEdge{from: e.From, to: e.To, level: level}
		t.baseIn[e.To] = append(t.baseIn[e.To], te)
		m.baseIns = append(m.baseIns, e.To)
		// Identity part of rw?.
		t.addComp(&m, e.From, cEdge{to: e.To, lvl1: level, lvl2: -1})
		// Compose with every active rw edge leaving e.To.
		for _, r := range t.rwOut[e.To] {
			t.addComp(&m, e.From, cEdge{to: r.to, lvl1: level, lvl2: r.level})
		}
	}
	t.marks = append(t.marks, m)
}

func (t *siTheory) Pop(keep int) {
	for len(t.marks) > 0 && t.marks[len(t.marks)-1].level > keep {
		m := t.marks[len(t.marks)-1]
		t.marks = t.marks[:len(t.marks)-1]
		for i := len(m.compAt) - 1; i >= 0; i-- {
			v := m.compAt[i]
			t.comp[v] = t.comp[v][:len(t.comp[v])-1]
		}
		for i := len(m.baseIns) - 1; i >= 0; i-- {
			v := m.baseIns[i]
			t.baseIn[v] = t.baseIn[v][:len(t.baseIn[v])-1]
		}
		for i := len(m.rwOuts) - 1; i >= 0; i-- {
			v := m.rwOuts[i]
			t.rwOut[v] = t.rwOut[v][:len(t.rwOut[v])-1]
		}
	}
}

// Check searches for a composed cycle through the newest push's edges.
func (t *siTheory) Check() ([]int, bool) {
	if len(t.marks) == 0 {
		return nil, true
	}
	m := &t.marks[len(t.marks)-1]
	for _, nc := range m.newEdges {
		if lvls, found := t.findCompPath(nc.e.to, nc.from); found {
			return mergeLevels(lvls, levelsOfCEdge(nc.e)), false
		}
	}
	return nil, true
}

// findCompPath DFSes the composed graph from src to dst, returning the
// levels of the edges on the path.
func (t *siTheory) findCompPath(src, dst int) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	t.epoch++
	t.seen[src] = t.epoch
	stack := t.stack[:0]
	stack = append(stack, src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.comp[v] {
			if t.seen[e.to] == t.epoch {
				continue
			}
			t.seen[e.to] = t.epoch
			t.parentEdge[e.to] = e
			t.parentNode[e.to] = v
			if e.to == dst {
				var lvls []int
				for x := dst; x != src; x = t.parentNode[x] {
					lvls = mergeLevels(lvls, levelsOfCEdge(t.parentEdge[x]))
				}
				t.stack = stack
				return lvls, true
			}
			stack = append(stack, e.to)
		}
	}
	t.stack = stack
	return nil, false
}

func levelsOfCEdge(e cEdge) []int {
	if e.lvl2 < 0 {
		return []int{e.lvl1}
	}
	return mergeLevels([]int{e.lvl1}, []int{e.lvl2})
}
