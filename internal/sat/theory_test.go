package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceSICheck rebuilds the composed graph from scratch and checks
// acyclicity — the oracle for the incremental siTheory.
func referenceSICheck(n int, active []Edge) bool {
	rwOut := make([][]int, n)
	var base []Edge
	for _, e := range active {
		if e.Kind == RW {
			rwOut[e.From] = append(rwOut[e.From], e.To)
		} else {
			base = append(base, e)
		}
	}
	out := make([][]int, n)
	indeg := make([]int, n)
	add := func(a, b int) {
		out[a] = append(out[a], b)
		indeg[b]++
	}
	for _, b := range base {
		add(b.From, b.To)
		for _, c := range rwOut[b.To] {
			add(b.From, c)
		}
	}
	var q []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			q = append(q, v)
		}
	}
	seen := 0
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		seen++
		for _, w := range out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				q = append(q, w)
			}
		}
	}
	return seen == n
}

// referenceAcyclicCheck is the oracle for acyclicTheory.
func referenceAcyclicCheck(n int, active []Edge) bool {
	out := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range active {
		out[e.From] = append(out[e.From], e.To)
		indeg[e.To]++
	}
	var q []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			q = append(q, v)
		}
	}
	seen := 0
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		seen++
		for _, w := range out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				q = append(q, w)
			}
		}
	}
	return seen == n
}

// driveTheory exercises a theory with a random push/pop sequence,
// mirroring how the solver uses it: Pop only after failed Checks, and
// random backjumps. It compares every Check verdict against the oracle.
func driveTheory(t *testing.T, rng *rand.Rand, mk func(n int) Theory,
	oracle func(n int, active []Edge) bool) bool {
	t.Helper()
	n := 3 + rng.Intn(6)
	th := mk(n)
	randEdges := func() []Edge {
		var es []Edge
		for i := 0; i <= rng.Intn(3); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			kind := Base
			if rng.Intn(3) == 0 {
				kind = RW
			}
			es = append(es, Edge{From: a, To: b, Kind: kind})
		}
		return es
	}
	// Stack of (level, edges) mirroring solver state. Level 0 = known.
	type lvl struct {
		level int
		edges []Edge
	}
	stack := []lvl{{level: 0, edges: randEdges()}}
	th.Push(0, stack[0].edges)
	active := func() []Edge {
		var all []Edge
		for _, l := range stack {
			all = append(all, l.edges...)
		}
		return all
	}
	check := func() bool {
		_, ok := th.Check()
		want := oracle(n, active())
		if ok != want {
			t.Logf("n=%d stack=%v incremental=%v oracle=%v", n, stack, ok, want)
			return false
		}
		// The solver pops a failed level immediately; mirror that so the
		// "acyclic before every push" invariant holds.
		if !ok {
			keep := stack[len(stack)-1].level - 1
			th.Pop(keep)
			stack = stack[:len(stack)-1]
		}
		return true
	}
	if !check() {
		return false
	}
	if len(stack) == 0 {
		return true // the known edges alone were cyclic; nothing to drive
	}
	for step := 0; step < 40; step++ {
		if rng.Intn(3) != 0 || len(stack) == 1 {
			level := stack[len(stack)-1].level + 1
			es := randEdges()
			stack = append(stack, lvl{level: level, edges: es})
			th.Push(level, es)
			if !check() {
				return false
			}
		} else {
			// Backjump to a random earlier level.
			idx := rng.Intn(len(stack)-1) + 1
			keep := stack[idx-1].level
			th.Pop(keep)
			stack = stack[:idx]
		}
	}
	return true
}

func TestPropertyIncrementalSITheoryMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return driveTheory(t, rng, newSITheory, referenceSICheck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIncrementalAcyclicTheoryMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return driveTheory(t, rng, newAcyclicTheory, referenceAcyclicCheck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSITheoryPopRestoresExactly(t *testing.T) {
	th := newSITheory(4).(*siTheory)
	th.Push(0, []Edge{{From: 0, To: 1, Kind: Base}})
	before := len(th.comp[0])
	th.Push(1, []Edge{{From: 1, To: 2, Kind: Base}, {From: 2, To: 3, Kind: RW}})
	th.Push(2, []Edge{{From: 3, To: 0, Kind: Base}})
	th.Pop(0)
	if len(th.comp[0]) != before || len(th.comp[1]) != 0 || len(th.comp[3]) != 0 {
		t.Fatal("pop did not restore composed adjacency")
	}
	if len(th.baseIn[2]) != 0 || len(th.rwOut[2]) != 0 {
		t.Fatal("pop did not restore indexes")
	}
	if len(th.marks) != 1 {
		t.Fatalf("marks = %d", len(th.marks))
	}
}

func TestSITheorySamePushComposition(t *testing.T) {
	// A base edge and an rw edge pushed TOGETHER must still compose:
	// base 0->1 with rw 1->0 yields the composed self-loop 0->0.
	th := newSITheory(2)
	th.Push(0, nil)
	if _, ok := th.Check(); !ok {
		t.Fatal("empty must pass")
	}
	th.Push(1, []Edge{{From: 0, To: 1, Kind: Base}, {From: 1, To: 0, Kind: RW}})
	if lvls, ok := th.Check(); ok {
		t.Fatal("composed self-loop missed")
	} else if !containsLevel(lvls, 1) {
		t.Fatalf("conflict levels %v must include 1", lvls)
	}
	// And in the opposite intra-push order.
	th2 := newSITheory(2)
	th2.Push(0, nil)
	th2.Push(1, []Edge{{From: 1, To: 0, Kind: RW}, {From: 0, To: 1, Kind: Base}})
	if _, ok := th2.Check(); ok {
		t.Fatal("composed self-loop missed (rw first)")
	}
}

func TestSolverStatisticsPopulated(t *testing.T) {
	cons := []Constraint{
		{A: []Edge{be(0, 1)}, B: []Edge{be(1, 0)}},
		{A: []Edge{be(1, 2)}, B: []Edge{be(2, 1)}},
	}
	r := SolveAcyclic(3, nil, cons)
	if !r.Sat || r.Decisions == 0 {
		t.Fatalf("stats: %+v", r)
	}
	if len(r.Choices) != 2 {
		t.Fatalf("choices: %+v", r.Choices)
	}
}
