package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// Suffix is appended to an engine's name to form its sharded wrapper's
// registry name ("mtc" -> "mtc-sharded").
const Suffix = "-sharded"

// Name maps an engine name to its sharded wrapper's registry name;
// already-sharded names pass through unchanged.
func Name(engine string) string {
	if strings.HasSuffix(engine, Suffix) {
		return engine
	}
	return engine + Suffix
}

// IsSharded reports whether name is a sharded wrapper's registry name.
func IsSharded(name string) bool { return strings.HasSuffix(name, Suffix) }

func init() {
	// Wrap every engine registered so far (the package init of
	// internal/checker runs first — this package imports it), so the
	// default registry serves a "*-sharded" twin of each base engine.
	for _, c := range checker.Default.All() {
		if !IsSharded(c.Name()) {
			checker.Register(Wrap(c))
		}
	}
}

// sharded is the component-sharded wrapper of one base engine.
type sharded struct{ base checker.Checker }

// Wrap returns a checker that decomposes every history into its
// key/session-disjoint components (Split), checks up to Options.Shard
// components concurrently through the wrapped engine, and merges the
// per-component reports (Merge). Its name is the base name plus
// "-sharded"; its levels are the base's.
func Wrap(c checker.Checker) checker.Checker { return sharded{base: c} }

func (s sharded) Name() string            { return Name(s.base.Name()) }
func (s sharded) Levels() []checker.Level { return s.base.Levels() }

func (s sharded) Check(ctx context.Context, h *history.History, opts checker.Options) (checker.Report, error) {
	return Check(ctx, s.base, h, opts)
}

// Check is the sharded driver: decompose h, check the components
// concurrently through c (at most graph.Parallelism(opts.Shard) at a
// time; the engine-internal opts.Parallelism is forwarded unchanged),
// and merge. A history that decomposes into a single component is
// checked directly — sharding degenerates to the plain engine plus a
// partition pass.
func Check(ctx context.Context, c checker.Checker, h *history.History, opts checker.Options) (checker.Report, error) {
	splitStart := time.Now()
	p := Split(h)
	splitTime := time.Since(splitStart)

	inner := opts
	inner.Shard = 0
	if len(p.Components) <= 1 {
		rep, err := c.Check(ctx, h, inner)
		if err != nil {
			return checker.Report{}, err
		}
		rep.Checker = Name(c.Name())
		rep.ShardComponents = len(p.Components)
		if rep.ShardComponents == 0 {
			rep.ShardComponents = 1 // nothing to split (e.g. init-only history)
		}
		return rep, nil
	}

	// Per-component fan-out with item granularity: components are few
	// and coarse, so workers claim them one at a time (graph.ParallelDo's
	// chunked claiming would hand all of them to a single worker).
	n := len(p.Components)
	workers := graph.Parallelism(opts.Shard)
	if workers > n {
		workers = n
	}
	// The engine-internal parallelism budget is divided across the
	// concurrent component checks, so the total worker count stays at
	// the caller's budget instead of multiplying to Shard*Parallelism
	// (which would oversubscribe the host the server clamps protect).
	if inner.Parallelism = graph.Parallelism(opts.Parallelism) / workers; inner.Parallelism < 1 {
		inner.Parallelism = 1
	}
	reports := make([]checker.Report, n)
	errs := make([]error, n)
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				reports[i], errs[i] = c.Check(ctx, p.Components[i].H, inner)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return checker.Report{}, err
	}
	for _, err := range errs {
		if err != nil {
			return checker.Report{}, err
		}
	}
	rep := Merge(p, c.Name(), opts.Level, reports)
	rep.Timings = append([]checker.PhaseTiming{
		{Phase: "partition", Millis: float64(splitTime) / float64(time.Millisecond)},
	}, rep.Timings...)
	return rep, nil
}

// Merge combines per-component reports into the whole-history verdict:
//
//   - OK is the conjunction (the decomposition invariant makes this
//     exact: no dependency edge crosses components);
//   - anomalies are remapped to external transaction ids, concatenated,
//     and sorted by external position (then kind, key, value);
//   - the counterexample cycle is taken from the first-offending
//     component — the violating component whose smallest implicated
//     external transaction id is minimal — with its edges remapped, so
//     FirstOffense(merged) is the minimum across components;
//   - edge counts, per-phase timings (by phase name) and compaction
//     stats are summed; Txns is the source history's size;
//   - profile fields fold exactly because no dependency edge or session
//     crosses components: each lattice rung is the per-component
//     conjunction, the strongest level is the lattice minimum, and each
//     session guarantee is the conjunction. Rung and guarantee witnesses
//     are engine-rendered strings, so a violated entry keeps the first
//     offending component's witness prefixed with its component index
//     (the transaction/session ids in it are component-local).
//
// Engine-specific Detail strings are kept from the first-offending
// component; structured fields (anomalies, cycle edges) always carry
// external ids.
func Merge(p *Partition, engine string, lvl checker.Level, reports []checker.Report) checker.Report {
	out := checker.Report{
		Checker: Name(engine), Level: lvl, OK: true,
		Txns:            len(p.Source.Txns),
		ShardComponents: len(p.Components),
	}
	largest := 0
	offender := -1   // component index of the first offense
	offenderAt := -1 // its FirstOffense
	var phaseOrder []string
	phaseSum := make(map[string]float64)
	rungAt := make(map[checker.Level]int) // level -> index in out.Rungs
	guarAt := make(map[string]int)        // guarantee -> index in out.Guarantees
	for i := range reports {
		rep := remap(&p.Components[i], reports[i])
		mergeProfile(&out, rep, i, rungAt, guarAt)
		if n := len(p.Components[i].H.Txns); n > largest {
			largest = n
		}
		out.Edges += rep.Edges
		out.CompactedEpochs += rep.CompactedEpochs
		out.CompactedTxns += rep.CompactedTxns
		out.Anomalies = append(out.Anomalies, rep.Anomalies...)
		for _, ph := range rep.Timings {
			if _, seen := phaseSum[ph.Phase]; !seen {
				phaseOrder = append(phaseOrder, ph.Phase)
			}
			phaseSum[ph.Phase] += ph.Millis
		}
		if !rep.OK {
			out.OK = false
			at := FirstOffense(rep)
			if offender < 0 || (at >= 0 && (offenderAt < 0 || at < offenderAt)) {
				offender, offenderAt = i, at
				out.Cycle = rep.Cycle
				out.Detail = rep.Detail
			}
		}
	}
	sortAnomalies(out.Anomalies)
	for _, ph := range phaseOrder {
		out.Timings = append(out.Timings, checker.PhaseTiming{Phase: ph, Millis: phaseSum[ph]})
	}
	summary := fmt.Sprintf("sharded: %d components (largest %d txns)", len(p.Components), largest)
	switch {
	case out.Detail != "":
		out.Detail = fmt.Sprintf("%s; component %d: %s", summary, offender, out.Detail)
	default:
		out.Detail = summary
	}
	return out
}

// mergeProfile folds component i's profile fields (strongest level,
// lattice rungs, session guarantees) into the merged report. Rungs and
// guarantees conjoin per entry; a newly violated entry adopts the
// component's witness, prefixed with the component index since the ids
// inside are component-local.
func mergeProfile(out *checker.Report, rep checker.Report, i int, rungAt map[checker.Level]int, guarAt map[string]int) {
	if rep.StrongestLevel != "" {
		if out.StrongestLevel == "" ||
			core.LatticeRank(rep.StrongestLevel) < core.LatticeRank(out.StrongestLevel) {
			out.StrongestLevel = rep.StrongestLevel
		}
	}
	for _, rv := range rep.Rungs {
		at, seen := rungAt[rv.Level]
		if !seen {
			at = len(out.Rungs)
			rungAt[rv.Level] = at
			out.Rungs = append(out.Rungs, checker.RungVerdict{Level: rv.Level, OK: true})
		}
		if !rv.OK && out.Rungs[at].OK {
			out.Rungs[at].OK = false
			out.Rungs[at].Witness = fmt.Sprintf("component %d: %s", i, rv.Witness)
		}
	}
	for _, gv := range rep.Guarantees {
		at, seen := guarAt[gv.Guarantee]
		if !seen {
			at = len(out.Guarantees)
			guarAt[gv.Guarantee] = at
			out.Guarantees = append(out.Guarantees, checker.GuaranteeVerdict{Guarantee: gv.Guarantee, OK: true, Session: -1})
		}
		if !gv.OK && out.Guarantees[at].OK {
			out.Guarantees[at].OK = false
			out.Guarantees[at].Witness = fmt.Sprintf("component %d: %s", i, gv.Witness)
		}
	}
}

// remap rewrites a component report's transaction ids (anomalies and
// cycle edges) to external ids. Detail strings are engine-rendered and
// left untouched.
func remap(c *Component, rep checker.Report) checker.Report {
	if len(rep.Anomalies) > 0 {
		as := make([]history.Anomaly, len(rep.Anomalies))
		for i, a := range rep.Anomalies {
			a.Txn = c.ExtOf(a.Txn)
			as[i] = a
		}
		rep.Anomalies = as
	}
	if len(rep.Cycle) > 0 {
		cy := make([]graph.Edge, len(rep.Cycle))
		for i, e := range rep.Cycle {
			e.From, e.To = c.ExtOf(e.From), c.ExtOf(e.To)
			cy[i] = e
		}
		rep.Cycle = cy
		rep.Detail = graph.FormatCycle(cy)
	}
	return rep
}

// FirstOffense returns the smallest transaction id implicated by the
// report's counterexample (anomalies and cycle edges), or -1 when the
// report carries no structured counterexample. On a merged sharded
// report the ids are external, so this is the first offending
// transaction position across all components.
func FirstOffense(rep checker.Report) int {
	min := -1
	upd := func(id int) {
		if id >= 0 && (min < 0 || id < min) {
			min = id
		}
	}
	for _, a := range rep.Anomalies {
		upd(a.Txn)
	}
	for _, e := range rep.Cycle {
		upd(e.From)
		upd(e.To)
	}
	return min
}

// sortAnomalies orders a merged anomaly list deterministically by
// external transaction position, then kind, key and value.
func sortAnomalies(as []history.Anomaly) {
	sort.SliceStable(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Value < b.Value
	})
}
