package shard

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mtc/internal/checker"
	"mtc/internal/core"
)

// TestShardedLevelsConcurrently runs ONE multi-tenant history through
// the registry's sharded wrappers at Shard 1, 2 and GOMAXPROCS
// simultaneously — the workers share the history, the partition logic
// and the wrapped engines, so under -race this is the proof that the
// component fan-out and the merge touch no shared mutable state.
// Alongside the workers, a cancellation goroutine submits the same job
// under an immediately-expiring context and asserts the component loop
// aborts promptly.
func TestShardedLevelsConcurrently(t *testing.T) {
	h := tenantHistory(4, 30)
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, name := range []string{"mtc-sharded", "mtc-incremental-sharded", "polysi-sharded"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var (
				wg      sync.WaitGroup
				mu      sync.Mutex
				reports []checker.Report
			)
			for _, sh := range levels {
				for rep := 0; rep < 2; rep++ {
					wg.Add(1)
					go func(sh int) {
						defer wg.Done()
						r, err := checker.Run(context.Background(), name, h, checker.Options{Level: core.SI, Shard: sh})
						if err != nil {
							t.Errorf("shard %d: %v", sh, err)
							return
						}
						mu.Lock()
						reports = append(reports, r)
						mu.Unlock()
					}(sh)
				}
			}
			// Cancellation: an expired context stops the fan-out quickly.
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				start := time.Now()
				_, err := checker.Run(ctx, name, h, checker.Options{Level: core.SI, Shard: 2})
				if err == nil {
					t.Error("canceled sharded run returned no error")
				}
				if d := time.Since(start); d > 2*time.Second {
					t.Errorf("canceled sharded run took %v, want < 2s", d)
				}
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			for i := 1; i < len(reports); i++ {
				a, b := reports[0], reports[i]
				a.Timings, b.Timings = nil, nil // wall-clock differs, nothing else may
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("reports diverge across shard levels:\n%+v\n%+v", a, b)
				}
			}
		})
	}
}
