// Package shard decomposes a history into key/session-disjoint connected
// components and checks them independently — the structural parallelism
// layer above every verification engine in this repository.
//
// The decomposition invariant: two transactions land in the same
// component iff they are connected through shared keys or shared
// sessions. Every dependency edge the checkers derive — SO (same
// session), WR/WW/RW (same key), and the reads-from matching behind them
// — therefore stays inside one component, so a violation cycle can never
// cross components and the conjunction of per-component verdicts equals
// the whole-history verdict. (For SSER the real-time order does cross
// components, but strict serializability composes over disjoint key sets
// — the locality argument of linearizability — so the conjunction is
// still exact; only per-component edge counts exclude cross-component RT
// pairs.)
//
// The initial transaction ⊥T touches every key and would glue everything
// into one component, so it is replicated instead: each component gets
// its own init transaction writing only the keys that component touches,
// which preserves both the init's session-order edges and its per-key
// write chains.
//
// Multi-tenant and per-user workloads decompose into one component per
// tenant; a workload whose keys are all shared degenerates to a single
// component, and checking then falls back to the plain engine (see
// docs/sharding.md).
package shard

import (
	"sort"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// Component is one connected component of a decomposed history: a
// self-contained sub-history with densely renumbered transaction ids and
// the translation back to the source history's ids.
type Component struct {
	// H is the component's sub-history. Transaction ids are local
	// (dense, 0-based); Ext translates them back.
	H *history.History
	// Ext maps local transaction ids to external ids in the source
	// history. When the source has an init transaction, Ext[0] == 0: the
	// component's replicated init stands for the source's ⊥T.
	Ext []int
}

// ExtOf translates a local transaction id to its id in the source
// history. Ids outside the component (defensive) map to themselves.
func (c *Component) ExtOf(local int) int {
	if local >= 0 && local < len(c.Ext) {
		return c.Ext[local]
	}
	return local
}

// Partition is the component decomposition of one history.
type Partition struct {
	// Source is the history that was decomposed.
	Source *history.History
	// Components lists the connected components ordered by their
	// smallest external transaction id (deterministic for a given
	// history). A history whose transactions are all connected yields
	// exactly one component.
	Components []Component

	compOf []int // external txn id -> component index; -1 for ⊥T
}

// ComponentOf returns the component index holding external transaction
// ext, or -1 for the init transaction (which every component replicates).
func (p *Partition) ComponentOf(ext int) int {
	if ext >= 0 && ext < len(p.compOf) {
		return p.compOf[ext]
	}
	return -1
}

// Split partitions h into its connected components. Sessions are the
// union-find seeds: every transaction (committed or aborted — aborted
// writers matter for G1a) unions its session with every key it touches,
// so sessions sharing a key coalesce. The init transaction is excluded
// from the union (it touches all keys) and replicated per component
// instead. Sessions without transactions contribute nothing.
//
// Split never mutates h; component sub-histories share the source's Op
// slices (per-transaction metadata is copied, operations are not).
func Split(h *history.History) *Partition {
	nSess := len(h.Sessions)
	u := graph.NewUnionFind(nSess)
	// Keys are interned to dense first-seen ids, which line up with the
	// union-find elements grown past the session seeds: key id k is
	// element nSess+k.
	it := history.NewInterner()
	firstTxn := 0
	if h.HasInit {
		firstTxn = 1
	}
	for i := firstTxn; i < len(h.Txns); i++ {
		t := &h.Txns[i]
		if t.Session < 0 || t.Session >= nSess {
			continue // defensively skip txns outside the session table
		}
		for _, op := range t.Ops {
			before := it.Len()
			kid := it.Intern(op.Key)
			if it.Len() > before {
				u.Grow()
			}
			u.Union(t.Session, nSess+int(kid))
		}
	}

	// Group non-empty sessions by root.
	bySess := make(map[int][]int) // root -> session indices (ascending)
	for s := 0; s < nSess; s++ {
		if len(h.Sessions[s]) == 0 {
			continue
		}
		r := u.Find(s)
		bySess[r] = append(bySess[r], s)
	}

	p := &Partition{Source: h, compOf: make([]int, len(h.Txns))}
	for i := range p.compOf {
		p.compOf[i] = -1
	}

	// Deterministic component order: by the smallest external txn id.
	type group struct {
		sessions []int
		minTxn   int
	}
	groups := make([]group, 0, len(bySess))
	for _, sessions := range bySess {
		min := len(h.Txns)
		for _, s := range sessions {
			for _, id := range h.Sessions[s] {
				if id < min {
					min = id
				}
			}
		}
		groups = append(groups, group{sessions: sessions, minTxn: min})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].minTxn < groups[j].minTxn })

	for _, g := range groups {
		p.Components = append(p.Components, p.build(g.sessions))
	}
	return p
}

// build assembles the sub-history of one session group.
func (p *Partition) build(sessions []int) Component {
	h := p.Source
	ci := len(p.Components)

	// External ids of the component's transactions, ascending. Session
	// lists are already ascending per session, so a merge of sorted lists
	// would do; a sort keeps it simple.
	var ext []int
	for _, s := range sessions {
		ext = append(ext, h.Sessions[s]...)
	}
	sort.Ints(ext)

	// Keys the component touches, for the replicated init.
	keys := make(map[history.Key]bool)
	for _, id := range ext {
		for _, op := range h.Txns[id].Ops {
			keys[op.Key] = true
		}
	}

	sub := &history.History{}
	var extMap []int
	if h.HasInit {
		// Replicated ⊥T: only the ops whose key this component touches,
		// in the source init's op order (preserving per-key write chains
		// and the init's session-order edges).
		init := h.Txns[0]
		var ops []history.Op
		for _, op := range init.Ops {
			if keys[op.Key] {
				ops = append(ops, op)
			}
		}
		sub.HasInit = true
		sub.Txns = append(sub.Txns, history.Txn{
			ID: 0, Session: -1, Ops: ops,
			Start: init.Start, Finish: init.Finish, Committed: init.Committed,
		})
		extMap = append(extMap, 0)
	}

	sessMap := make(map[int]int, len(sessions))
	for li, s := range sessions {
		sessMap[s] = li
	}
	sub.Sessions = make([][]int, len(sessions))
	for _, id := range ext {
		t := h.Txns[id]
		local := len(sub.Txns)
		ls := sessMap[t.Session]
		sub.Txns = append(sub.Txns, history.Txn{
			ID: local, Session: ls, Ops: t.Ops,
			Start: t.Start, Finish: t.Finish, Committed: t.Committed,
		})
		sub.Sessions[ls] = append(sub.Sessions[ls], local)
		extMap = append(extMap, id)
		p.compOf[id] = ci
	}
	return Component{H: sub, Ext: extMap}
}
