package shard

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/history"
)

// tenantHistory builds a clean multi-tenant history: `tenants` session
// pairs, each pair working over its own two keys, so the decomposition
// has exactly `tenants` components.
func tenantHistory(tenants, txnsPerSession int) *history.History {
	var keys []history.Key
	for t := 0; t < tenants; t++ {
		keys = append(keys, history.Key(fmt.Sprintf("t%da", t)), history.Key(fmt.Sprintf("t%db", t)))
	}
	b := history.NewBuilder(keys...)
	last := make(map[history.Key]history.Value)
	val := history.Value(1)
	for i := 0; i < txnsPerSession; i++ {
		for t := 0; t < tenants; t++ {
			ka := history.Key(fmt.Sprintf("t%da", t))
			kb := history.Key(fmt.Sprintf("t%db", t))
			for s := 0; s < 2; s++ {
				// Read both tenant keys, update the session's own: the
				// history is serial (built in program order), and the
				// shared read couples the tenant's two sessions into one
				// component.
				k := ka
				if s == 1 {
					k = kb
				}
				b.Txn(2*t+s, history.R(ka, last[ka]), history.R(kb, last[kb]), history.W(k, val))
				last[k] = val
				val++
			}
		}
	}
	return b.Build()
}

func TestSplitTenants(t *testing.T) {
	h := tenantHistory(4, 5)
	p := Split(h)
	if len(p.Components) != 4 {
		t.Fatalf("got %d components, want 4", len(p.Components))
	}
	seen := make(map[int]bool)
	keysOf := make(map[int]map[history.Key]bool)
	total := 0
	for ci := range p.Components {
		c := &p.Components[ci]
		if err := c.H.Validate(); err != nil {
			t.Fatalf("component %d invalid: %v", ci, err)
		}
		if !c.H.HasInit {
			t.Fatalf("component %d lost the init transaction", ci)
		}
		keysOf[ci] = map[history.Key]bool{}
		for li := range c.H.Txns {
			ext := c.ExtOf(li)
			if li == 0 {
				if ext != 0 {
					t.Fatalf("component %d: init maps to %d, want 0", ci, ext)
				}
				continue
			}
			if seen[ext] {
				t.Fatalf("external txn %d appears in more than one component", ext)
			}
			seen[ext] = true
			total++
			if got := p.ComponentOf(ext); got != ci {
				t.Fatalf("ComponentOf(%d) = %d, want %d", ext, got, ci)
			}
			// Ops are shared with the source transaction, id metadata remapped.
			if !reflect.DeepEqual(c.H.Txns[li].Ops, h.Txns[ext].Ops) {
				t.Fatalf("component %d txn %d ops diverge from external %d", ci, li, ext)
			}
			for _, op := range c.H.Txns[li].Ops {
				keysOf[ci][op.Key] = true
			}
		}
	}
	if total != len(h.Txns)-1 {
		t.Fatalf("components cover %d txns, want %d", total, len(h.Txns)-1)
	}
	// Key-disjointness: the decomposition invariant.
	for a := range keysOf {
		for b := range keysOf {
			if a >= b {
				continue
			}
			for k := range keysOf[a] {
				if keysOf[b][k] {
					t.Fatalf("components %d and %d share key %s", a, b, k)
				}
			}
		}
	}
	if p.ComponentOf(0) != -1 {
		t.Fatalf("init transaction must map to component -1, got %d", p.ComponentOf(0))
	}
}

// TestSplitSharedKeyDegenerates: sessions coupled through one shared key
// collapse into a single component.
func TestSplitSharedKeyDegenerates(t *testing.T) {
	b := history.NewBuilder("x", "y", "z")
	b.Txn(0, history.R("x", 0), history.W("x", 1))
	b.Txn(1, history.R("y", 0), history.W("y", 2))
	b.Txn(2, history.R("z", 0), history.W("z", 3))
	// The coupler reads two of the keys, chaining all three sessions.
	b.Txn(0, history.R("y", 2), history.W("y", 4))
	b.Txn(1, history.R("z", 3), history.W("z", 5))
	p := Split(b.Build())
	if len(p.Components) != 1 {
		t.Fatalf("got %d components, want 1", len(p.Components))
	}
}

// TestSplitEdgeParity: summed per-component dependency edges equal the
// unsharded count at SER/SI (init replication preserves SO and per-key
// write chains).
func TestSplitEdgeParity(t *testing.T) {
	h := tenantHistory(3, 8)
	for _, lvl := range []core.Level{core.SER, core.SI} {
		ref := core.Check(h, lvl)
		if !ref.OK {
			t.Fatalf("reference %s check rejected a clean history", lvl)
		}
		sum := 0
		for _, c := range Split(h).Components {
			r := core.Check(c.H, lvl)
			if !r.OK {
				t.Fatalf("component %s check rejected a clean component", lvl)
			}
			sum += r.NumEdges
		}
		if sum != ref.NumEdges {
			t.Fatalf("%s: component edges sum to %d, unsharded has %d", lvl, sum, ref.NumEdges)
		}
	}
}

// TestMergeFirstOffense: with violations in two components, the merged
// report carries every anomaly (sorted by external position) and the
// first offense is the minimum across components — even when the
// first-offending component is not component 0.
func TestMergeFirstOffense(t *testing.T) {
	b := history.NewBuilder("x", "y")
	b.Txn(0, history.R("x", 0), history.W("x", 1)) // T1, component 0 (x)
	b.Txn(1, history.R("y", 99))                   // T2, component 1 (y): thin-air
	b.Txn(0, history.R("x", 77))                   // T3, component 0 (x): thin-air
	h := b.Build()

	rep, err := checker.Run(context.Background(), "mtc-sharded", h, checker.Options{Level: core.SI, Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("merged verdict must be a violation")
	}
	if rep.ShardComponents != 2 {
		t.Fatalf("ShardComponents = %d, want 2", rep.ShardComponents)
	}
	want := []history.Anomaly{
		{Kind: history.ThinAirRead, Txn: 2, Key: "y", Value: 99},
		{Kind: history.ThinAirRead, Txn: 3, Key: "x", Value: 77},
	}
	if !reflect.DeepEqual(rep.Anomalies, want) {
		t.Fatalf("merged anomalies = %v, want %v", rep.Anomalies, want)
	}
	if at := FirstOffense(rep); at != 2 {
		t.Fatalf("FirstOffense = %d, want 2 (min across components)", at)
	}
	// The unsharded engine agrees on the anomaly set.
	ref, err := checker.Run(context.Background(), "mtc", h, checker.Options{Level: core.SI})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Anomalies, want) {
		t.Fatalf("unsharded anomalies = %v, want %v", ref.Anomalies, want)
	}
}

// TestShardedSingleComponentFallback: a fully-coupled history passes
// through the wrapped engine directly, with the wrapper's name and a
// component count of 1.
func TestShardedSingleComponentFallback(t *testing.T) {
	h := history.SerialHistory(10, "x")
	rep, err := checker.Run(context.Background(), "mtc-sharded", h, checker.Options{Level: core.SER})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.ShardComponents != 1 || rep.Checker != "mtc-sharded" {
		t.Fatalf("fallback report: %+v", rep)
	}
	ref, err := checker.Run(context.Background(), "mtc", h, checker.Options{Level: core.SER})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != ref.Edges || rep.Txns != ref.Txns {
		t.Fatalf("fallback diverges: %d/%d edges, %d/%d txns", rep.Edges, ref.Edges, rep.Txns, ref.Txns)
	}
}

// TestShardedRegistry: every base engine has a "-sharded" twin with the
// same levels.
func TestShardedRegistry(t *testing.T) {
	for _, name := range []string{"mtc", "mtc-incremental", "cobra", "polysi", "elle", "porcupine"} {
		base, err := checker.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := checker.Lookup(Name(name))
		if err != nil {
			t.Fatalf("no sharded twin for %s: %v", name, err)
		}
		if !reflect.DeepEqual(base.Levels(), wrapped.Levels()) {
			t.Fatalf("%s levels diverge: %v vs %v", name, base.Levels(), wrapped.Levels())
		}
	}
	if Name("mtc-sharded") != "mtc-sharded" {
		t.Fatal("Name must be idempotent")
	}
}

// barrierChecker blocks every Check until `want` calls are in flight —
// the proof that the driver fans components out with item granularity
// (a chunked claim would run them all on one worker and deadlock here).
type barrierChecker struct {
	want     int32
	inFlight atomic.Int32
	release  chan struct{}
}

func (b *barrierChecker) Name() string            { return "barrier" }
func (b *barrierChecker) Levels() []checker.Level { return []checker.Level{core.SER} }

func (b *barrierChecker) Check(ctx context.Context, h *history.History, opts checker.Options) (checker.Report, error) {
	if b.inFlight.Add(1) == b.want {
		close(b.release)
	}
	select {
	case <-b.release:
	case <-time.After(10 * time.Second):
		return checker.Report{}, fmt.Errorf("fan-out never reached %d concurrent component checks", b.want)
	}
	return checker.Report{Checker: "barrier", Level: core.SER, OK: true, Txns: len(h.Txns)}, nil
}

// TestDriverChecksComponentsConcurrently: at Shard 4 on a 4-component
// history, all four component checks must be in flight at once.
func TestDriverChecksComponentsConcurrently(t *testing.T) {
	h := tenantHistory(4, 2)
	bc := &barrierChecker{want: 4, release: make(chan struct{})}
	rep, err := Check(context.Background(), bc, h, checker.Options{Level: core.SER, Shard: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.ShardComponents != 4 {
		t.Fatalf("merged report: %+v", rep)
	}
}

// TestShardedTimings: the merged report sums per-phase timings across
// components and prepends the partition phase.
func TestShardedTimings(t *testing.T) {
	h := tenantHistory(3, 4)
	rep, err := checker.Run(context.Background(), "mtc-sharded", h, checker.Options{Level: core.SER, Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) < 2 || rep.Timings[0].Phase != "partition" {
		t.Fatalf("timings = %v, want partition first then the engine phases", rep.Timings)
	}
	if rep.Detail == "" || rep.ShardComponents != 3 {
		t.Fatalf("merged clean report: %+v", rep)
	}
}
