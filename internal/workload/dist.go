// Package workload provides the parametric workload generators of
// Section V-A: the MT workload generator (the paper's contribution), a
// Cobra-style general-transaction (GT) generator, an Elle-style
// list-append generator, and a synthetic lightweight-transaction history
// generator with controllable concurrency for the SSER experiments.
//
// Generators emit operation *specs* (which keys to touch and how); the
// runner assigns unique write values at execution time by combining a
// client identifier with a local counter, as in Section II-A.
package workload

import (
	"fmt"
	"math/rand"
)

// DistKind names an object-access distribution (the skewness axis of
// Figures 7, 8).
type DistKind string

// The four distributions the paper evaluates.
const (
	Uniform     DistKind = "uniform"
	Zipfian     DistKind = "zipf"
	Hotspot     DistKind = "hotspot"
	Exponential DistKind = "exp"
)

// Distributions lists all supported kinds in the paper's order.
func Distributions() []DistKind {
	return []DistKind{Uniform, Zipfian, Hotspot, Exponential}
}

// Dist draws object indices in [0, n).
type Dist interface {
	Next(rng *rand.Rand) int
}

// NewDist constructs a distribution over n objects.
func NewDist(kind DistKind, n int, rng *rand.Rand) Dist {
	if n <= 0 {
		panic("workload: distribution over zero objects")
	}
	switch kind {
	case Uniform:
		return uniformDist{n: n}
	case Zipfian:
		// s=1.1, v=1 mirrors common benchmark skew (YCSB-style).
		return zipfDist{z: rand.NewZipf(rng, 1.1, 1, uint64(n-1))}
	case Hotspot:
		// 80% of accesses hit the hottest 20% of objects.
		hot := n / 5
		if hot == 0 {
			hot = 1
		}
		return hotspotDist{n: n, hot: hot, frac: 0.8}
	case Exponential:
		return expDist{n: n, lambda: 8.0 / float64(n)}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %q", kind))
	}
}

type uniformDist struct{ n int }

func (d uniformDist) Next(rng *rand.Rand) int { return rng.Intn(d.n) }

type zipfDist struct{ z *rand.Zipf }

func (d zipfDist) Next(*rand.Rand) int { return int(d.z.Uint64()) }

type hotspotDist struct {
	n, hot int
	frac   float64
}

func (d hotspotDist) Next(rng *rand.Rand) int {
	if rng.Float64() < d.frac {
		return rng.Intn(d.hot)
	}
	if d.hot >= d.n {
		return rng.Intn(d.n)
	}
	return d.hot + rng.Intn(d.n-d.hot)
}

type expDist struct {
	n      int
	lambda float64
}

func (d expDist) Next(rng *rand.Rand) int {
	for {
		x := int(rng.ExpFloat64() / d.lambda)
		if x < d.n {
			return x
		}
	}
}
