// Package workload provides the parametric workload generators of
// Section V-A: the MT workload generator (the paper's contribution), a
// Cobra-style general-transaction (GT) generator, an Elle-style
// list-append generator, and a synthetic lightweight-transaction history
// generator with controllable concurrency for the SSER experiments.
//
// Generators emit operation *specs* (which keys to touch and how); the
// runner assigns unique write values at execution time by combining a
// client identifier with a local counter, as in Section II-A.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
)

// DistKind names an object-access distribution (the skewness axis of
// Figures 7, 8).
type DistKind string

// The four distributions the paper evaluates.
const (
	Uniform     DistKind = "uniform"
	Zipfian     DistKind = "zipf"
	Hotspot     DistKind = "hotspot"
	Exponential DistKind = "exp"
)

// Distributions lists all supported kinds in the paper's order.
func Distributions() []DistKind {
	return []DistKind{Uniform, Zipfian, Hotspot, Exponential}
}

// Dist draws object indices in [0, n). Next draws from the rng it is
// handed, so one Dist may be shared by concurrent generators as long as
// each goroutine passes its own *rand.Rand — and repeating a seed
// reproduces the sequence regardless of what other goroutines drew.
type Dist interface {
	Next(rng *rand.Rand) int
}

// NewDist constructs a distribution over n objects.
func NewDist(kind DistKind, n int, rng *rand.Rand) Dist {
	if n <= 0 {
		panic("workload: distribution over zero objects")
	}
	switch kind {
	case Uniform:
		return uniformDist{n: n}
	case Zipfian:
		// s=1.1, v=1 mirrors common benchmark skew (YCSB-style).
		return &zipfDist{n: n}
	case Hotspot:
		// 80% of accesses hit the hottest 20% of objects.
		hot := n / 5
		if hot == 0 {
			hot = 1
		}
		return hotspotDist{n: n, hot: hot, frac: 0.8}
	case Exponential:
		return expDist{n: n, lambda: 8.0 / float64(n)}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %q", kind))
	}
}

type uniformDist struct{ n int }

func (d uniformDist) Next(rng *rand.Rand) int { return rng.Intn(d.n) }

// zipfDist draws Zipf(s=1.1, v=1) indices. rand.Zipf binds the *rand.Rand
// it was built over, so a single shared Zipf would (a) ignore the rng the
// caller passed to Next — breaking seed reproducibility — and (b) race
// when generators run concurrently. Instead the Zipf source is
// per-*rand.Rand, built lazily and cached: rand.NewZipf precomputes only
// seed-independent constants, so a cached source draws exactly the same
// sequence from its rng as a freshly built one.
type zipfDist struct {
	n int
	// z caches *rand.Zipf per rng. sync.Map fits the access pattern
	// exactly: each goroutine writes its entry once and then only reads
	// it, so the steady-state draw path is lock-free. Entries live as
	// long as the Dist — callers feeding a long-lived Dist unboundedly
	// many transient rngs should construct a Dist per generator instead.
	z sync.Map // *rand.Rand -> *rand.Zipf
}

func (d *zipfDist) Next(rng *rand.Rand) int {
	// One object: every draw is index 0. Answering directly also keeps
	// uint64(n-1) == 0 out of rand.NewZipf, whose sampling degenerates at
	// an inclusive maximum of zero. (n <= 0 is rejected by NewDist.)
	if d.n == 1 {
		return 0
	}
	v, ok := d.z.Load(rng)
	if !ok {
		// Two goroutines never race on one rng (an rng is not safe for
		// concurrent use anyway), so this store has no real contention.
		v, _ = d.z.LoadOrStore(rng, rand.NewZipf(rng, 1.1, 1, uint64(d.n-1)))
	}
	// Draw outside any lock: each goroutine owns its rng and therefore
	// its cached Zipf.
	return int(v.(*rand.Zipf).Uint64())
}

type hotspotDist struct {
	n, hot int
	frac   float64
}

func (d hotspotDist) Next(rng *rand.Rand) int {
	if rng.Float64() < d.frac {
		return rng.Intn(d.hot)
	}
	if d.hot >= d.n {
		return rng.Intn(d.n)
	}
	return d.hot + rng.Intn(d.n-d.hot)
}

type expDist struct {
	n      int
	lambda float64
}

func (d expDist) Next(rng *rand.Rand) int {
	for {
		x := int(rng.ExpFloat64() / d.lambda)
		if x < d.n {
			return x
		}
	}
}
