package workload

import (
	"math/rand"
	"sync"
	"testing"
)

// TestZipfDeterministicPerSeed: a Dist must draw the same sequence from
// equally seeded rngs — including the zipf distribution, which used to
// bind one *rand.Zipf to the construction-time rng and ignore the rng
// passed to Next.
func TestZipfDeterministicPerSeed(t *testing.T) {
	for _, kind := range Distributions() {
		draw := func(d Dist, seed int64) []int {
			rng := rand.New(rand.NewSource(seed))
			out := make([]int, 200)
			for i := range out {
				out[i] = d.Next(rng)
			}
			return out
		}
		// Same seed through two independent Dist constructions.
		d1 := NewDist(kind, 64, rand.New(rand.NewSource(1)))
		d2 := NewDist(kind, 64, rand.New(rand.NewSource(99)))
		a, b := draw(d1, 7), draw(d2, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across constructions: %d vs %d", kind, i, a[i], b[i])
			}
			if a[i] < 0 || a[i] >= 64 {
				t.Fatalf("%s: draw %d out of range: %d", kind, i, a[i])
			}
		}
		// Repeating a seed on the SAME Dist must reproduce too (the old
		// zipf advanced shared state, so a second pass diverged).
		c := draw(d1, 7)
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("%s: repeated seed diverged at draw %d: %d vs %d", kind, i, a[i], c[i])
			}
		}
	}
}

// TestDistConcurrentGenerators drives one shared Dist from many
// goroutines, each with its own rng — the concurrent-workload-generation
// shape that used to race on the shared rand.Zipf. Run under -race this
// is the regression test; it also checks per-goroutine determinism while
// the others interleave.
func TestDistConcurrentGenerators(t *testing.T) {
	for _, kind := range Distributions() {
		d := NewDist(kind, 32, rand.New(rand.NewSource(3)))
		want := func(seed int64) []int {
			ref := NewDist(kind, 32, rand.New(rand.NewSource(3)))
			rng := rand.New(rand.NewSource(seed))
			out := make([]int, 500)
			for i := range out {
				out[i] = ref.Next(rng)
			}
			return out
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				exp := want(seed)
				for i := range exp {
					if got := d.Next(rng); got != exp[i] {
						errs <- string(kind) + ": concurrent draw diverged from serial reference"
						return
					}
				}
			}(int64(g + 10))
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// TestZipfSingleObject guards the n=1 edge: uint64(n-1) == 0 must not
// reach rand.NewZipf, and every draw is index 0.
func TestZipfSingleObject(t *testing.T) {
	d := NewDist(Zipfian, 1, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if got := d.Next(rng); got != 0 {
			t.Fatalf("n=1 draw %d = %d, want 0", i, got)
		}
	}
}
