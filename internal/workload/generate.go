package workload

import (
	"math/rand"
)

// MTConfig parameterizes the mini-transaction workload generator
// (Section V-A1): number of sessions, transactions per session, objects,
// and the object-access distribution.
type MTConfig struct {
	Sessions int
	Txns     int // transactions per session
	Objects  int
	Dist     DistKind
	Seed     int64
	// ReadOnlyFrac is the fraction of MTs with no writes (default 0.25
	// when zero and UseDefaults).
	ReadOnlyFrac float64
	// Tenants splits the plan into key-disjoint session groups — the
	// multi-tenant scenario component-sharded verification exploits.
	// Session s belongs to tenant s mod Tenants, and each tenant draws
	// its keys from a private universe of Objects keys (the plan's key
	// space grows to Objects*Tenants). <= 1 keeps the single shared key
	// space and is byte-identical to the pre-Tenants generator.
	Tenants int
}

// GenerateMT plans an MT workload. Each transaction is one of the five MT
// shapes — R, RMW, R+R, R+RMW, RMW+RMW — drawn uniformly after the
// read-only decision, so the plan exercises every anomaly-relevant shape
// (reads, lost-update RMWs, and the read-two-write-one/two shapes needed
// for write skew).
func GenerateMT(cfg MTConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 {
		panic("workload: MTConfig requires positive sessions, txns, objects")
	}
	if cfg.Dist == "" {
		cfg.Dist = Uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tenants := cfg.Tenants
	if tenants <= 1 {
		tenants = 1
	}
	dist := NewDist(cfg.Dist, cfg.Objects, rng)
	ro := cfg.ReadOnlyFrac

	w := &Workload{Keys: KeyUniverse(cfg.Objects * tenants)}
	for s := 0; s < cfg.Sessions; s++ {
		base := (s % tenants) * cfg.Objects // tenant key-space offset
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			k1 := KeyName(base + dist.Next(rng))
			k2 := KeyName(base + dist.Next(rng))
			for tries := 0; k2 == k1 && cfg.Objects > 1 && tries < 8; tries++ {
				k2 = KeyName(base + dist.Next(rng))
			}
			readOnly := rng.Float64() < ro
			var ops []OpSpec
			if readOnly {
				if rng.Intn(2) == 0 || k2 == k1 {
					ops = []OpSpec{{SpecRead, k1}}
				} else {
					ops = []OpSpec{{SpecRead, k1}, {SpecRead, k2}}
				}
			} else {
				switch shape := rng.Intn(3); {
				case shape == 0 || k2 == k1: // single RMW
					ops = []OpSpec{{SpecRMW, k1}}
				case shape == 1: // read one, RMW the other (write-skew shape)
					ops = []OpSpec{{SpecRead, k1}, {SpecRMW, k2}}
				default: // double RMW
					ops = []OpSpec{{SpecRMW, k1}, {SpecRMW, k2}}
				}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}

// GTConfig parameterizes the Cobra-style general-transaction generator:
// 20% read-only, 40% write-only and 40% RMW transactions, each with
// OpsPerTxn operations (Section V-A1).
type GTConfig struct {
	Sessions  int
	Txns      int // transactions per session
	Objects   int
	OpsPerTxn int
	Dist      DistKind
	Seed      int64
	// Tenants splits the plan into key-disjoint session groups exactly
	// as MTConfig.Tenants does: session s draws its keys from tenant
	// (s mod Tenants)'s private universe of Objects keys.
	Tenants int
}

// GenerateGT plans a GT workload with Cobra's transaction mix.
func GenerateGT(cfg GTConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 || cfg.OpsPerTxn <= 0 {
		panic("workload: GTConfig requires positive parameters")
	}
	if cfg.Dist == "" {
		cfg.Dist = Uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tenants := cfg.Tenants
	if tenants <= 1 {
		tenants = 1
	}
	dist := NewDist(cfg.Dist, cfg.Objects, rng)

	w := &Workload{Keys: KeyUniverse(cfg.Objects * tenants)}
	for s := 0; s < cfg.Sessions; s++ {
		base := (s % tenants) * cfg.Objects // tenant key-space offset
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			var ops []OpSpec
			switch p := rng.Float64(); {
			case p < 0.2: // read-only
				for j := 0; j < cfg.OpsPerTxn; j++ {
					ops = append(ops, OpSpec{SpecRead, KeyName(base + dist.Next(rng))})
				}
			case p < 0.6: // write-only
				for j := 0; j < cfg.OpsPerTxn; j++ {
					ops = append(ops, OpSpec{SpecWrite, KeyName(base + dist.Next(rng))})
				}
			default: // RMW: each spec contributes a read and a write
				for j := 0; j < cfg.OpsPerTxn/2; j++ {
					ops = append(ops, OpSpec{SpecRMW, KeyName(base + dist.Next(rng))})
				}
				if len(ops) == 0 {
					ops = append(ops, OpSpec{SpecRMW, KeyName(base + dist.Next(rng))})
				}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}

// ListAppendConfig parameterizes the Elle-style list-append generator.
type ListAppendConfig struct {
	Sessions  int
	Txns      int // transactions per session
	Objects   int
	MaxTxnLen int // maximum operations per transaction
	Dist      DistKind
	Seed      int64
}

// GenerateListAppend plans a list-append workload: each transaction mixes
// appends and list reads over MaxTxnLen operations (length drawn
// uniformly in [1, MaxTxnLen]).
func GenerateListAppend(cfg ListAppendConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 || cfg.MaxTxnLen <= 0 {
		panic("workload: ListAppendConfig requires positive parameters")
	}
	if cfg.Dist == "" {
		cfg.Dist = Uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	dist := NewDist(cfg.Dist, cfg.Objects, rng)

	w := &Workload{Keys: KeyUniverse(cfg.Objects)}
	for s := 0; s < cfg.Sessions; s++ {
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			n := 1 + rng.Intn(cfg.MaxTxnLen)
			ops := make([]OpSpec, n)
			for j := range ops {
				k := KeyName(dist.Next(rng))
				if rng.Intn(2) == 0 {
					ops[j] = OpSpec{SpecAppend, k}
				} else {
					ops[j] = OpSpec{SpecReadList, k}
				}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}

// RWRegisterConfig parameterizes an Elle-style read-write-register
// workload: like GT but with a maximum transaction length and a 50/50
// read/write mix, matching the "elle-wr" configuration of Figure 13.
type RWRegisterConfig struct {
	Sessions  int
	Txns      int
	Objects   int
	MaxTxnLen int
	Dist      DistKind
	Seed      int64
}

// GenerateRWRegister plans the read-write-register workload.
func GenerateRWRegister(cfg RWRegisterConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 || cfg.MaxTxnLen <= 0 {
		panic("workload: RWRegisterConfig requires positive parameters")
	}
	if cfg.Dist == "" {
		cfg.Dist = Uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	dist := NewDist(cfg.Dist, cfg.Objects, rng)

	w := &Workload{Keys: KeyUniverse(cfg.Objects)}
	for s := 0; s < cfg.Sessions; s++ {
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			n := 1 + rng.Intn(cfg.MaxTxnLen)
			ops := make([]OpSpec, n)
			for j := range ops {
				k := KeyName(dist.Next(rng))
				if rng.Intn(2) == 0 {
					ops[j] = OpSpec{SpecRead, k}
				} else {
					ops[j] = OpSpec{SpecWrite, k}
				}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}
