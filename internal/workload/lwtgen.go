package workload

import (
	"math/rand"

	"mtc/internal/core"
	"mtc/internal/history"
)

// LWTConfig parameterizes the synthetic lightweight-transaction history
// generator of Section V-A2: a valid (linearizable) SSER history whose
// concurrency level is controlled directly, since adjusting black-box
// workload parameters cannot predictably control concurrency.
type LWTConfig struct {
	Sessions       int
	TxnsPerSession int
	// ConcurrentFrac is the fraction of sessions whose operations get
	// overlapping real-time intervals (0..1). 1.0 reproduces the paper's
	// "extreme concurrency where all clients execute simultaneously".
	ConcurrentFrac float64
	Keys           int // number of independent registers (default 1)
	Seed           int64
	// Violate injects one real-time violation per key when true, turning
	// the history non-linearizable.
	Violate bool
}

// GenerateLWT builds a synthetic LWT history. Per key it lays down a valid
// CAS chain (one insert followed by R&W operations), assigns operations
// round-robin to sessions, and widens the intervals of operations owned by
// "concurrent" sessions so they overlap their chain neighbours. The
// resulting history is linearizable by construction unless Violate is set.
func GenerateLWT(cfg LWTConfig) []core.LWT {
	if cfg.Sessions <= 0 || cfg.TxnsPerSession <= 0 {
		panic("workload: LWTConfig requires positive sessions and txns")
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	concurrent := make([]bool, cfg.Sessions)
	for s := range concurrent {
		concurrent[s] = float64(s) < cfg.ConcurrentFrac*float64(cfg.Sessions)
	}

	total := cfg.Sessions * cfg.TxnsPerSession
	perKey := total / cfg.Keys
	if perKey == 0 {
		perKey = 1
	}
	var ops []core.LWT
	id := 0
	session := 0
	for k := 0; k < cfg.Keys; k++ {
		key := KeyName(k)
		var t int64 = 10
		// Insert heads the chain.
		ops = append(ops, core.LWT{
			ID: id, Key: key, Kind: core.LWTInsert, Write: 0,
			Start: t, Finish: t + 4,
		})
		id++
		t += 10
		prev := history.Value(0)
		for i := 1; i <= perKey; i++ {
			start, finish := t, t+4
			if concurrent[session] {
				// Overlap with neighbours: start may precede the previous
				// operation's finish, finish may extend into successors -
				// but never past the point where start would exceed a
				// successor's finish (which would break linearizability).
				start -= int64(rng.Intn(12))
				finish += int64(rng.Intn(4))
			}
			if start < 1 {
				start = 1
			}
			ops = append(ops, core.LWT{
				ID: id, Key: key, Kind: core.LWTRW,
				Read: prev, Write: history.Value(i),
				Start: start, Finish: finish,
			})
			prev = history.Value(i)
			id++
			t += 10
			session = (session + 1) % cfg.Sessions
		}
		if cfg.Violate && perKey >= 2 {
			// Push one mid-chain operation entirely after its successors.
			i := len(ops) - 1 - rng.Intn(perKey-1) - 1
			ops[i].Start += int64(perKey * 20)
			ops[i].Finish = ops[i].Start + 4
		}
	}
	// Presentation order must not matter to checkers.
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}
