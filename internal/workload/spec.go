package workload

import (
	"fmt"

	"mtc/internal/history"
)

// SpecKind identifies how an operation spec touches its key.
type SpecKind uint8

// Operation spec kinds.
const (
	SpecRead     SpecKind = iota // read the key
	SpecWrite                    // blind write (GT workloads only)
	SpecRMW                      // read then write (the MT pattern)
	SpecAppend                   // list append (Elle workloads)
	SpecReadList                 // list read (Elle workloads)
)

// String names the spec kind.
func (k SpecKind) String() string {
	switch k {
	case SpecRead:
		return "read"
	case SpecWrite:
		return "write"
	case SpecRMW:
		return "rmw"
	case SpecAppend:
		return "append"
	case SpecReadList:
		return "read-list"
	default:
		return fmt.Sprintf("SpecKind(%d)", uint8(k))
	}
}

// OpSpec is one planned access. Write values are assigned by the runner.
type OpSpec struct {
	Kind SpecKind
	Key  history.Key
}

// TxnSpec is a planned transaction.
type TxnSpec struct {
	Ops []OpSpec
}

// IsMT reports whether the spec lowers to a mini-transaction: at most two
// distinct keys, every write preceded by a read of the same key (SpecRMW
// guarantees this), and at most two reads and two writes.
func (t TxnSpec) IsMT() bool {
	reads, writes := 0, 0
	for _, op := range t.Ops {
		switch op.Kind {
		case SpecRead:
			reads++
		case SpecRMW:
			reads++
			writes++
		default:
			return false
		}
	}
	return reads >= 1 && reads <= 2 && writes <= 2
}

// Workload is a complete plan: per-session transaction specs plus the key
// universe (used to initialize the store).
type Workload struct {
	Sessions [][]TxnSpec
	Keys     []history.Key
}

// NumTxns returns the total number of planned transactions.
func (w *Workload) NumTxns() int {
	n := 0
	for _, s := range w.Sessions {
		n += len(s)
	}
	return n
}

// KeyName renders object index i as a key.
func KeyName(i int) history.Key { return history.Key(fmt.Sprintf("k%d", i)) }

// KeyUniverse returns the keys k0..k{n-1}.
func KeyUniverse(n int) []history.Key {
	keys := make([]history.Key, n)
	for i := range keys {
		keys[i] = KeyName(i)
	}
	return keys
}
