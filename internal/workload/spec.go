package workload

import (
	"fmt"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// SpecKind identifies how an operation spec touches its key.
type SpecKind uint8

// Operation spec kinds.
const (
	SpecRead     SpecKind = iota // read the key
	SpecWrite                    // blind write (GT workloads only)
	SpecRMW                      // read then write (the MT pattern)
	SpecAppend                   // list append (Elle workloads)
	SpecReadList                 // list read (Elle workloads)
)

// String names the spec kind.
func (k SpecKind) String() string {
	switch k {
	case SpecRead:
		return "read"
	case SpecWrite:
		return "write"
	case SpecRMW:
		return "rmw"
	case SpecAppend:
		return "append"
	case SpecReadList:
		return "read-list"
	default:
		return fmt.Sprintf("SpecKind(%d)", uint8(k))
	}
}

// OpSpec is one planned access. Write values are assigned by the runner.
type OpSpec struct {
	Kind SpecKind
	Key  history.Key
}

// TxnSpec is a planned transaction.
type TxnSpec struct {
	Ops []OpSpec
}

// IsMT reports whether the spec lowers to a mini-transaction: at most two
// distinct keys, every write preceded by a read of the same key (SpecRMW
// guarantees this), and at most two reads and two writes.
func (t TxnSpec) IsMT() bool {
	reads, writes := 0, 0
	for _, op := range t.Ops {
		switch op.Kind {
		case SpecRead:
			reads++
		case SpecRMW:
			reads++
			writes++
		default:
			return false
		}
	}
	return reads >= 1 && reads <= 2 && writes <= 2
}

// Workload is a complete plan: per-session transaction specs plus the key
// universe (used to initialize the store).
type Workload struct {
	Sessions [][]TxnSpec
	Keys     []history.Key
}

// NumTxns returns the total number of planned transactions.
func (w *Workload) NumTxns() int {
	n := 0
	for _, s := range w.Sessions {
		n += len(s)
	}
	return n
}

// Components groups the plan's sessions into key-disjoint connected
// components: two sessions land in the same group iff they are connected
// through shared planned keys. Every dependency edge a checker can
// derive from the executed history stays inside one group (retries reuse
// the plan's keys), so each group can be verified by its own online
// checker — the decomposition sharded streaming verification uses
// (runner.RunStream with Config.Shard). Groups are ordered by their
// smallest session index; sessions without transactions are omitted. A
// single-tenant plan yields one group.
func (w *Workload) Components() [][]int {
	u := graph.NewUnionFind(len(w.Sessions))
	keyOwner := make(map[history.Key]int)
	for si, specs := range w.Sessions {
		for _, spec := range specs {
			for _, op := range spec.Ops {
				if owner, ok := keyOwner[op.Key]; ok {
					u.Union(owner, si)
				} else {
					keyOwner[op.Key] = si
				}
			}
		}
	}
	groups := make(map[int][]int) // root -> session indices (ascending)
	var order []int               // roots by first-seen session = smallest member
	for si := range w.Sessions {
		if len(w.Sessions[si]) == 0 {
			continue
		}
		r := u.Find(si)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], si)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// SessionKeys returns the set of keys the given sessions' specs touch,
// in w.Keys order — the key universe a per-component checker must seed
// its init transaction with.
func (w *Workload) SessionKeys(sessions []int) []history.Key {
	set := make(map[history.Key]bool)
	for _, si := range sessions {
		for _, spec := range w.Sessions[si] {
			for _, op := range spec.Ops {
				set[op.Key] = true
			}
		}
	}
	out := make([]history.Key, 0, len(set))
	for _, k := range w.Keys {
		if set[k] {
			out = append(out, k)
		}
	}
	return out
}

// KeyName renders object index i as a key.
func KeyName(i int) history.Key { return history.Key(fmt.Sprintf("k%d", i)) }

// KeyUniverse returns the keys k0..k{n-1}.
func KeyUniverse(n int) []history.Key {
	keys := make([]history.Key, n)
	for i := range keys {
		keys[i] = KeyName(i)
	}
	return keys
}
