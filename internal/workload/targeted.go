package workload

import (
	"math/rand"
)

// TargetedConfig parameterizes the anomaly-guided MT generator, one of the
// paper's future-work directions (Section VII): instead of drawing MT
// shapes uniformly, sessions repeatedly emit the access patterns that the
// Figure-5 anomalies require, concentrated on a small hot set so the
// racing transactions actually collide.
type TargetedConfig struct {
	Sessions int
	Txns     int // transactions per session
	Objects  int // total objects; the hot set is min(2, Objects)
	Seed     int64
}

// GenerateTargeted plans an anomaly-guided MT workload. Each transaction
// is drawn from the shapes that the 14 anomalies need:
//
//   - RMW on a hot key            (lost update / divergence races)
//   - R(a) R(b) + W(b)            (write skew halves)
//   - RMW(a) RMW(b)               (fractured read / long fork sources)
//   - R(a) R(b)                   (long fork / causality observers)
//   - R(a)                        (session-guarantee observers)
//
// concentrated on two hot keys, with an occasional uniform cold access to
// keep version chains growing everywhere.
func GenerateTargeted(cfg TargetedConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 {
		panic("workload: TargetedConfig requires positive parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	hotA := KeyName(0)
	hotB := hotA
	if cfg.Objects > 1 {
		hotB = KeyName(1)
	}
	cold := func() OpSpec {
		return OpSpec{SpecRMW, KeyName(rng.Intn(cfg.Objects))}
	}
	w := &Workload{Keys: KeyUniverse(cfg.Objects)}
	for s := 0; s < cfg.Sessions; s++ {
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			a, b := hotA, hotB
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			var ops []OpSpec
			switch rng.Intn(6) {
			case 0: // racing RMW on a hot key (lost update)
				ops = []OpSpec{{SpecRMW, a}}
			case 1: // write-skew half: read both, write one
				ops = []OpSpec{{SpecRead, a}, {SpecRMW, b}}
			case 2: // double update (fractured-read source)
				if a == b {
					ops = []OpSpec{{SpecRMW, a}}
				} else {
					ops = []OpSpec{{SpecRMW, a}, {SpecRMW, b}}
				}
			case 3: // observer of both hot keys (long fork / causality)
				if a == b {
					ops = []OpSpec{{SpecRead, a}}
				} else {
					ops = []OpSpec{{SpecRead, a}, {SpecRead, b}}
				}
			case 4: // single observer (session guarantees)
				ops = []OpSpec{{SpecRead, a}}
			default: // cold refresh
				ops = []OpSpec{cold()}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}
