package workload

import (
	"math/rand"

	"mtc/internal/core"
)

// TargetedConfig parameterizes the anomaly-guided MT generator, one of the
// paper's future-work directions (Section VII): instead of drawing MT
// shapes uniformly, sessions repeatedly emit the access patterns that the
// Figure-5 anomalies require, concentrated on a small hot set so the
// racing transactions actually collide.
type TargetedConfig struct {
	Sessions int
	Txns     int // transactions per session
	Objects  int // total objects; the hot set is min(2, Objects)
	Seed     int64
}

// GenerateTargeted plans an anomaly-guided MT workload. Each transaction
// is drawn from the shapes that the 14 anomalies need:
//
//   - RMW on a hot key            (lost update / divergence races)
//   - R(a) R(b) + W(b)            (write skew halves)
//   - RMW(a) RMW(b)               (fractured read / long fork sources)
//   - R(a) R(b)                   (long fork / causality observers)
//   - R(a)                        (session-guarantee observers)
//
// concentrated on two hot keys, with an occasional uniform cold access to
// keep version chains growing everywhere.
func GenerateTargeted(cfg TargetedConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 {
		panic("workload: TargetedConfig requires positive parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	hotA := KeyName(0)
	hotB := hotA
	if cfg.Objects > 1 {
		hotB = KeyName(1)
	}
	cold := func() OpSpec {
		return OpSpec{SpecRMW, KeyName(rng.Intn(cfg.Objects))}
	}
	w := &Workload{Keys: KeyUniverse(cfg.Objects)}
	for s := 0; s < cfg.Sessions; s++ {
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			a, b := hotA, hotB
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			var ops []OpSpec
			switch rng.Intn(6) {
			case 0: // racing RMW on a hot key (lost update)
				ops = []OpSpec{{SpecRMW, a}}
			case 1: // write-skew half: read both, write one
				ops = []OpSpec{{SpecRead, a}, {SpecRMW, b}}
			case 2: // double update (fractured-read source)
				if a == b {
					ops = []OpSpec{{SpecRMW, a}}
				} else {
					ops = []OpSpec{{SpecRMW, a}, {SpecRMW, b}}
				}
			case 3: // observer of both hot keys (long fork / causality)
				if a == b {
					ops = []OpSpec{{SpecRead, a}}
				} else {
					ops = []OpSpec{{SpecRead, a}, {SpecRead, b}}
				}
			case 4: // single observer (session guarantees)
				ops = []OpSpec{{SpecRead, a}}
			default: // cold refresh
				ops = []OpSpec{cold()}
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}

// GenerateLevelTargeted plans an MT workload whose transaction mix
// concentrates on the collision shapes that break one lattice rung, for
// hunting a specific per-level fault (see faults.LevelBugs):
//
//   - RC:     dense RMW plus single readers — any read can land on a
//     dirty-aborted write.
//   - RA:     two-key atomic updates plus two-key observers — the
//     observer straddling an update is a fractured read.
//   - CAUSAL: write chains a-then-b per session plus observers reading
//     b-then-a across consecutive transactions — a stale snapshot
//     between the two observations inverts causality.
//   - SI:     racing RMW on one hot key — the lost-update shape.
//   - SER:    write-skew halves R(a)W(b) / R(b)W(a).
//
// Unknown levels fall back to the uniform anomaly mix of
// GenerateTargeted.
func GenerateLevelTargeted(lvl core.Level, cfg TargetedConfig) *Workload {
	if cfg.Sessions <= 0 || cfg.Txns <= 0 || cfg.Objects <= 0 {
		panic("workload: TargetedConfig requires positive parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	hotA := KeyName(0)
	hotB := hotA
	if cfg.Objects > 1 {
		hotB = KeyName(1)
	}
	w := &Workload{Keys: KeyUniverse(cfg.Objects)}
	for s := 0; s < cfg.Sessions; s++ {
		txns := make([]TxnSpec, cfg.Txns)
		for i := range txns {
			a, b := hotA, hotB
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			var ops []OpSpec
			switch lvl {
			case core.RC:
				if rng.Intn(2) == 0 {
					ops = []OpSpec{{SpecRMW, a}}
				} else {
					ops = []OpSpec{{SpecRead, a}}
				}
			case core.RA:
				if a == b || rng.Intn(2) == 0 {
					ops = []OpSpec{{SpecRMW, a}, {SpecRMW, b}}
				} else {
					ops = []OpSpec{{SpecRead, a}, {SpecRead, b}}
				}
			case core.CAUSAL:
				switch rng.Intn(3) {
				case 0: // chained updates the observers can invert
					ops = []OpSpec{{SpecRMW, a}}
				case 1:
					ops = []OpSpec{{SpecRead, a}, {SpecRMW, b}}
				default: // two-key observer, one key per read
					ops = []OpSpec{{SpecRead, b}, {SpecRead, a}}
				}
			case core.SI:
				ops = []OpSpec{{SpecRMW, hotA}}
			case core.SER, core.SSER:
				ops = []OpSpec{{SpecRead, a}, {SpecRMW, b}}
			default:
				return GenerateTargeted(cfg)
			}
			txns[i] = TxnSpec{Ops: ops}
		}
		w.Sessions = append(w.Sessions, txns)
	}
	return w
}
