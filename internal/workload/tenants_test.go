package workload

import (
	"reflect"
	"testing"

	"mtc/internal/history"
)

// TestTenantsKeyDisjoint: with T tenants the MT plan's sessions split
// into T key-disjoint groups, round-robin by session index.
func TestTenantsKeyDisjoint(t *testing.T) {
	w := GenerateMT(MTConfig{Sessions: 8, Txns: 20, Objects: 5, Seed: 7, Tenants: 4})
	if len(w.Keys) != 20 {
		t.Fatalf("key universe %d, want Objects*Tenants = 20", len(w.Keys))
	}
	comps := w.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	keysOf := make([]map[history.Key]bool, len(comps))
	for ci, group := range comps {
		keysOf[ci] = map[history.Key]bool{}
		for _, si := range group {
			if si%4 != ci {
				t.Fatalf("session %d landed in component %d, want %d", si, ci, si%4)
			}
			for _, k := range w.SessionKeys([]int{si}) {
				keysOf[ci][k] = true
			}
		}
	}
	for a := range keysOf {
		for b := range keysOf {
			if a >= b {
				continue
			}
			for k := range keysOf[a] {
				if keysOf[b][k] {
					t.Fatalf("tenants %d and %d share key %s", a, b, k)
				}
			}
		}
	}
}

// TestTenantsOffByDefault: Tenants 0 or 1 reproduces the single-tenant
// plan byte for byte (seed compatibility).
func TestTenantsOffByDefault(t *testing.T) {
	base := GenerateMT(MTConfig{Sessions: 3, Txns: 10, Objects: 4, Seed: 42})
	for _, tenants := range []int{0, 1} {
		got := GenerateMT(MTConfig{Sessions: 3, Txns: 10, Objects: 4, Seed: 42, Tenants: tenants})
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("Tenants=%d changed the plan", tenants)
		}
	}
	if comps := base.Components(); len(comps) != 1 {
		t.Fatalf("single-tenant plan has %d components, want 1", len(comps))
	}
}

// TestTenantsGT: the GT generator shards identically.
func TestTenantsGT(t *testing.T) {
	w := GenerateGT(GTConfig{Sessions: 6, Txns: 15, Objects: 4, OpsPerTxn: 4, Seed: 3, Tenants: 3})
	if len(w.Keys) != 12 {
		t.Fatalf("key universe %d, want 12", len(w.Keys))
	}
	if comps := w.Components(); len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	base := GenerateGT(GTConfig{Sessions: 6, Txns: 15, Objects: 4, OpsPerTxn: 4, Seed: 3})
	got := GenerateGT(GTConfig{Sessions: 6, Txns: 15, Objects: 4, OpsPerTxn: 4, Seed: 3, Tenants: 1})
	if !reflect.DeepEqual(got, base) {
		t.Fatal("Tenants=1 changed the GT plan")
	}
}

// TestSessionKeysOrdered: SessionKeys returns keys in universe order.
func TestSessionKeysOrdered(t *testing.T) {
	w := GenerateMT(MTConfig{Sessions: 2, Txns: 30, Objects: 6, Seed: 9})
	keys := w.SessionKeys([]int{0, 1})
	pos := map[history.Key]int{}
	for i, k := range w.Keys {
		pos[k] = i
	}
	for i := 1; i < len(keys); i++ {
		if pos[keys[i-1]] >= pos[keys[i]] {
			t.Fatalf("SessionKeys out of universe order: %v", keys)
		}
	}
}
