package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"mtc/internal/core"
)

func TestDistRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range Distributions() {
		d := NewDist(kind, 50, rng)
		for i := 0; i < 2000; i++ {
			x := d.Next(rng)
			if x < 0 || x >= 50 {
				t.Fatalf("%s: out of range %d", kind, x)
			}
		}
	}
}

func TestDistSingleObject(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range Distributions() {
		d := NewDist(kind, 1, rng)
		for i := 0; i < 100; i++ {
			if d.Next(rng) != 0 {
				t.Fatalf("%s: single-object distribution must return 0", kind)
			}
		}
	}
}

func TestDistUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDist(DistKind("bogus"), 10, rand.New(rand.NewSource(1)))
}

func TestDistZeroObjectsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDist(Uniform, 0, rand.New(rand.NewSource(1)))
}

func counts(d Dist, rng *rand.Rand, n, samples int) []int {
	c := make([]int, n)
	for i := 0; i < samples; i++ {
		c[d.Next(rng)]++
	}
	return c
}

func TestZipfSkewsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := counts(NewDist(Zipfian, 100, rng), rng, 100, 20000)
	if c[0] < c[50]*3 {
		t.Fatalf("zipf not skewed: c[0]=%d c[50]=%d", c[0], c[50])
	}
}

func TestHotspot8020(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := counts(NewDist(Hotspot, 100, rng), rng, 100, 20000)
	hot := 0
	for i := 0; i < 20; i++ {
		hot += c[i]
	}
	frac := float64(hot) / 20000
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("hotspot fraction = %f, want ~0.8", frac)
	}
}

func TestExponentialDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := counts(NewDist(Exponential, 100, rng), rng, 100, 20000)
	if c[0] <= c[30] {
		t.Fatalf("exponential not decreasing: c[0]=%d c[30]=%d", c[0], c[30])
	}
}

func TestGenerateMTShapes(t *testing.T) {
	w := GenerateMT(MTConfig{Sessions: 4, Txns: 100, Objects: 10, Dist: Zipfian, Seed: 7, ReadOnlyFrac: 0.25})
	if len(w.Sessions) != 4 || w.NumTxns() != 400 {
		t.Fatalf("plan shape: %d sessions, %d txns", len(w.Sessions), w.NumTxns())
	}
	if len(w.Keys) != 10 {
		t.Fatalf("keys = %v", w.Keys)
	}
	readOnly := 0
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			if !txn.IsMT() {
				t.Fatalf("non-MT spec generated: %+v", txn)
			}
			ro := true
			for _, op := range txn.Ops {
				if op.Kind != SpecRead {
					ro = false
				}
			}
			if ro {
				readOnly++
			}
		}
	}
	if readOnly < 50 || readOnly > 150 {
		t.Fatalf("read-only count %d not near 25%% of 400", readOnly)
	}
}

func TestGenerateMTDeterministic(t *testing.T) {
	cfg := MTConfig{Sessions: 2, Txns: 20, Objects: 5, Dist: Uniform, Seed: 9}
	a, b := GenerateMT(cfg), GenerateMT(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce the same plan")
	}
	cfg.Seed = 10
	c := GenerateMT(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateMTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	GenerateMT(MTConfig{})
}

func TestGenerateGTMix(t *testing.T) {
	w := GenerateGT(GTConfig{Sessions: 4, Txns: 200, Objects: 50, OpsPerTxn: 10, Seed: 5})
	if w.NumTxns() != 800 {
		t.Fatalf("txns = %d", w.NumTxns())
	}
	var ro, wo, rmw int
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			reads, writes, rmws := 0, 0, 0
			for _, op := range txn.Ops {
				switch op.Kind {
				case SpecRead:
					reads++
				case SpecWrite:
					writes++
				case SpecRMW:
					rmws++
				default:
					t.Fatalf("unexpected op kind %v in GT", op.Kind)
				}
			}
			switch {
			case reads > 0 && writes == 0 && rmws == 0:
				ro++
			case writes > 0 && reads == 0 && rmws == 0:
				wo++
			case rmws > 0 && reads == 0 && writes == 0:
				rmw++
			default:
				t.Fatalf("mixed GT transaction: %+v", txn)
			}
		}
	}
	// 20/40/40 split with slack.
	if ro < 100 || ro > 220 || wo < 240 || wo > 400 || rmw < 240 || rmw > 400 {
		t.Fatalf("mix ro=%d wo=%d rmw=%d", ro, wo, rmw)
	}
}

func TestGenerateGTOpsPerTxn(t *testing.T) {
	w := GenerateGT(GTConfig{Sessions: 1, Txns: 50, Objects: 10, OpsPerTxn: 8, Seed: 1})
	for _, txn := range w.Sessions[0] {
		n := 0
		for _, op := range txn.Ops {
			if op.Kind == SpecRMW {
				n += 2
			} else {
				n++
			}
		}
		if n != 8 {
			t.Fatalf("ops/txn = %d, want 8: %+v", n, txn)
		}
	}
}

func TestGenerateListAppend(t *testing.T) {
	w := GenerateListAppend(ListAppendConfig{Sessions: 3, Txns: 40, Objects: 5, MaxTxnLen: 6, Seed: 2})
	if w.NumTxns() != 120 {
		t.Fatalf("txns = %d", w.NumTxns())
	}
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			if len(txn.Ops) < 1 || len(txn.Ops) > 6 {
				t.Fatalf("txn len %d", len(txn.Ops))
			}
			for _, op := range txn.Ops {
				if op.Kind != SpecAppend && op.Kind != SpecReadList {
					t.Fatalf("unexpected kind %v", op.Kind)
				}
			}
		}
	}
}

func TestGenerateRWRegister(t *testing.T) {
	w := GenerateRWRegister(RWRegisterConfig{Sessions: 3, Txns: 40, Objects: 5, MaxTxnLen: 4, Seed: 2})
	if w.NumTxns() != 120 {
		t.Fatalf("txns = %d", w.NumTxns())
	}
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			for _, op := range txn.Ops {
				if op.Kind != SpecRead && op.Kind != SpecWrite {
					t.Fatalf("unexpected kind %v", op.Kind)
				}
			}
		}
	}
}

func TestGenerateLWTValid(t *testing.T) {
	for _, frac := range []float64{0, 0.5, 1} {
		ops := GenerateLWT(LWTConfig{Sessions: 10, TxnsPerSession: 20, ConcurrentFrac: frac, Keys: 3, Seed: 11})
		if r := core.VLLWT(ops); !r.OK {
			t.Fatalf("frac=%f: generated history must be linearizable: %s", frac, r.Reason)
		}
	}
}

func TestGenerateLWTViolation(t *testing.T) {
	ops := GenerateLWT(LWTConfig{Sessions: 5, TxnsPerSession: 20, ConcurrentFrac: 1, Keys: 2, Seed: 3, Violate: true})
	if r := core.VLLWT(ops); r.OK {
		t.Fatal("violating history must be rejected")
	}
}

func TestGenerateLWTConcurrencyOverlaps(t *testing.T) {
	ops := GenerateLWT(LWTConfig{Sessions: 4, TxnsPerSession: 50, ConcurrentFrac: 1, Keys: 1, Seed: 13})
	overlaps := 0
	for i := range ops {
		for j := range ops {
			if i != j && ops[i].Start < ops[j].Finish && ops[j].Start < ops[i].Finish {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Fatal("fully concurrent history should contain overlapping intervals")
	}
	serial := GenerateLWT(LWTConfig{Sessions: 4, TxnsPerSession: 50, ConcurrentFrac: 0, Keys: 1, Seed: 13})
	serialOverlaps := 0
	for i := range serial {
		for j := range serial {
			if i != j && serial[i].Start < serial[j].Finish && serial[j].Start < serial[i].Finish {
				serialOverlaps++
			}
		}
	}
	if serialOverlaps >= overlaps {
		t.Fatalf("serial overlaps %d >= concurrent overlaps %d", serialOverlaps, overlaps)
	}
}

func TestSpecKindStrings(t *testing.T) {
	for k, want := range map[SpecKind]string{
		SpecRead: "read", SpecWrite: "write", SpecRMW: "rmw",
		SpecAppend: "append", SpecReadList: "read-list",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if SpecKind(77).String() != "SpecKind(77)" {
		t.Fatal("unknown spec kind")
	}
}

func TestIsMTRejectsGTShapes(t *testing.T) {
	if (TxnSpec{Ops: []OpSpec{{SpecWrite, "x"}}}).IsMT() {
		t.Fatal("blind write is not MT")
	}
	if (TxnSpec{Ops: []OpSpec{{SpecRead, "x"}, {SpecRead, "y"}, {SpecRead, "z"}}}).IsMT() {
		t.Fatal("three reads is not MT")
	}
	if (TxnSpec{}).IsMT() {
		t.Fatal("empty is not MT")
	}
}

func TestKeyUniverse(t *testing.T) {
	keys := KeyUniverse(3)
	if len(keys) != 3 || keys[0] != "k0" || keys[2] != "k2" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestGenerateTargetedShapes(t *testing.T) {
	w := GenerateTargeted(TargetedConfig{Sessions: 4, Txns: 50, Objects: 8, Seed: 1})
	if w.NumTxns() != 200 || len(w.Keys) != 8 {
		t.Fatalf("plan shape: %d txns, %d keys", w.NumTxns(), len(w.Keys))
	}
	hot := 0
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			if !txn.IsMT() {
				t.Fatalf("non-MT targeted spec: %+v", txn)
			}
			for _, op := range txn.Ops {
				if op.Key == "k0" || op.Key == "k1" {
					hot++
				}
			}
		}
	}
	if hot < 150 {
		t.Fatalf("targeted plan must concentrate on the hot set, got %d hot accesses", hot)
	}
}

func TestGenerateTargetedSingleObject(t *testing.T) {
	w := GenerateTargeted(TargetedConfig{Sessions: 2, Txns: 20, Objects: 1, Seed: 2})
	for _, sess := range w.Sessions {
		for _, txn := range sess {
			if !txn.IsMT() {
				t.Fatalf("non-MT spec with single object: %+v", txn)
			}
		}
	}
}

func TestGenerateTargetedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	GenerateTargeted(TargetedConfig{})
}
