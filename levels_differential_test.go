// levels_differential_test.go property-tests the lattice profiler
// against the dedicated engines and the Elle baseline: on every history —
// clean or fault-injected, MT or general-transaction shaped — the
// profile's SER rung must be bit-identical to core.CheckSER (verdict,
// counterexample cycle edge by edge, anomaly list, edge count), the SI
// rung bit-identical to core.CheckSI whenever it actually runs, the SSER
// verdict must agree with core.CheckSSER (the profiler decides it
// without materializing the time chain), the rung column must be
// monotone in the lattice, and no Elle-visible violation may pass a
// shared rung. This is the contract docs/isolation.md advertises for
// `profile` as a drop-in engine.
package main

import (
	"context"
	"reflect"
	"testing"

	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/levels"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// profileCheck profiles one history and cross-examines the report.
func profileCheck(t *testing.T, h *history.History, tag string) *levels.Report {
	t.Helper()
	prof, err := levels.Profile(context.Background(), h, levels.Options{})
	if err != nil {
		t.Fatalf("%s: profile failed: %v", tag, err)
	}

	// SER: the profiler always computes this rung on the shared graph,
	// so it must be bit-identical to the dedicated engine.
	ser := core.CheckSER(h)
	rser := prof.Rung(core.SER).Res
	if rser.OK != ser.OK || rser.NumTxns != ser.NumTxns || rser.NumEdges != ser.NumEdges {
		t.Fatalf("%s: SER rung OK=%v txns=%d edges=%d, engine OK=%v txns=%d edges=%d",
			tag, rser.OK, rser.NumTxns, rser.NumEdges, ser.OK, ser.NumTxns, ser.NumEdges)
	}
	if !reflect.DeepEqual(rser.Cycle, ser.Cycle) {
		t.Fatalf("%s: SER cycles diverge\nprofile: %v\nengine:  %v", tag, rser.Cycle, ser.Cycle)
	}
	if !reflect.DeepEqual(rser.Anomalies, ser.Anomalies) {
		t.Fatalf("%s: SER anomalies diverge\nprofile: %v\nengine:  %v", tag, rser.Anomalies, ser.Anomalies)
	}

	// SI: the verdict always agrees; the witness is bit-identical
	// whenever the rung actually ran (a SER pass short-circuits it).
	si := core.CheckSI(h)
	rsi := prof.Rung(core.SI).Res
	if rsi.OK != si.OK {
		t.Fatalf("%s: SI rung OK=%v, engine OK=%v", tag, rsi.OK, si.OK)
	}
	if !rser.OK {
		if !reflect.DeepEqual(rsi.Cycle, si.Cycle) {
			t.Fatalf("%s: SI cycles diverge\nprofile: %v\nengine:  %v", tag, rsi.Cycle, si.Cycle)
		}
		if !reflect.DeepEqual(rsi.Anomalies, si.Anomalies) {
			t.Fatalf("%s: SI anomalies diverge\nprofile: %v\nengine:  %v", tag, rsi.Anomalies, si.Anomalies)
		}
		if !reflect.DeepEqual(rsi.Divergence, si.Divergence) {
			t.Fatalf("%s: SI divergence witnesses diverge\nprofile: %v\nengine:  %v",
				tag, rsi.Divergence, si.Divergence)
		}
	}

	// SSER: the profiler's chain-free inversion check must agree with
	// the dedicated engine's time-chain cycle search.
	sser := core.CheckSSER(h)
	if got := prof.Rung(core.SSER).Res.OK; got != sser.OK {
		t.Fatalf("%s: SSER rung OK=%v, engine OK=%v (%s)", tag, got, sser.OK, sser.Explain())
	}

	// Lattice monotonicity: once a rung is violated, every rung above it
	// must be violated too, and Strongest is exactly the highest OK rung.
	strongest := levels.None
	broken := false
	for _, v := range prof.Rungs {
		switch {
		case v.Res.OK && broken:
			t.Fatalf("%s: non-monotone profile: %s passes above a violated rung", tag, v.Level)
		case v.Res.OK:
			strongest = v.Level
		default:
			broken = true
		}
	}
	if prof.Strongest != strongest {
		t.Fatalf("%s: strongest=%s, rung column says %s", tag, prof.Strongest, strongest)
	}

	// Elle cross-check on the shared levels: the register mode infers a
	// subset of MTC's dependencies, so any violation Elle can see must
	// fail the corresponding rung here too.
	if r := elle.CheckRWRegister(h, elle.SER); !r.OK && rser.OK {
		t.Fatalf("%s: elle rejects SER (%s) but the SER rung passed", tag, r.Reason)
	}
	if r := elle.CheckRWRegister(h, elle.SI); !r.OK && rsi.OK {
		t.Fatalf("%s: elle rejects SI (%s) but the SI rung passed", tag, r.Reason)
	}
	return prof
}

// TestDifferentialProfileVsEngines replays >= 1000 randomized histories
// through the profiler: clean MT histories from both strong store modes,
// blind-write general-transaction histories, Table-II fault injections,
// and the per-rung fault presets (which must never break a rung below
// the one they target).
func TestDifferentialProfileVsEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow under -short")
	}
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	lbs := faults.LevelBugs()
	histories := 0
	check := func(h *history.History, tag string) *levels.Report {
		histories++
		return profileCheck(t, h, tag)
	}
	for seed := int64(1); seed <= 80; seed++ {
		// Clean MT histories from every store mode: timestamps present, so
		// the SSER inversion scan decides over a real time order.
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 6, Objects: 4,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI} {
			check(runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H, mode.String())
		}
		// General-transaction histories: blind writes leave undetermined
		// version orders, exercising the incomparable-version paths of the
		// weak rungs and guarantees.
		wg := workload.GenerateGT(workload.GTConfig{
			Sessions: 3, Txns: 6, Objects: 3, OpsPerTxn: 3, Seed: seed,
		})
		check(runner.Run(kv.NewStore(kv.ModeSerializable), wg, runner.Config{Retries: 2}).H, "gt")
		// Table-II fault injections: violating verdicts must stay
		// bit-identical too.
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for i := 0; i < 5; i++ {
			b := bugs[(int(seed)+i)%len(bugs)]
			check(runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H, b.Name)
		}
		// Per-rung fault presets: whatever breaks must break at or above
		// the preset's target rung, never below it.
		for _, lb := range lbs {
			wl := workload.GenerateLevelTargeted(lb.Breaks, workload.TargetedConfig{
				Sessions: 4, Txns: 24, Objects: 3, Seed: seed,
			})
			prof := check(runner.Run(lb.NewStore(seed), wl, runner.Config{Retries: 2}).H, lb.Anomaly)
			if b := prof.Breaking(); b != nil &&
				core.LatticeRank(b.Level) < core.LatticeRank(lb.Breaks) {
				t.Fatalf("%s preset broke %s, below its target rung %s", lb.Anomaly, b.Level, lb.Breaks)
			}
		}
	}
	if histories < 1000 {
		t.Fatalf("differential corpus too small: %d histories", histories)
	}
	t.Logf("profiled %d histories against the dedicated engines and elle", histories)
}
