// parallel_differential_test.go property-tests the parallel engine paths
// against their serial references: on every history — clean or
// fault-injected, MT or general-transaction shaped — every affected
// engine must return the identical verdict, anomaly list and edge count
// at parallelism 1, 2 and 4. This is the contract the Parallelism knob
// advertises (checker.Options): only wall-clock may change.
package main

import (
	"context"
	"reflect"
	"testing"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// parCheck runs one engine/level on one history at several parallelism
// settings and demands wire-identical reports.
func parCheck(t *testing.T, name string, lvl checker.Level, h *history.History, tag string) {
	t.Helper()
	ctx := context.Background()
	ref, err := checker.Run(ctx, name, h, checker.Options{Level: lvl, Parallelism: 1})
	if err != nil {
		t.Fatalf("%s/%s/%s: serial run failed: %v", tag, name, lvl, err)
	}
	for _, par := range []int{2, 4} {
		got, err := checker.Run(ctx, name, h, checker.Options{Level: lvl, Parallelism: par})
		if err != nil {
			t.Fatalf("%s/%s/%s par %d: %v", tag, name, lvl, par, err)
		}
		if got.OK != ref.OK {
			t.Fatalf("%s/%s/%s par %d: OK=%v, serial OK=%v\nserial detail: %s\npar detail: %s",
				tag, name, lvl, par, got.OK, ref.OK, ref.Detail, got.Detail)
		}
		if got.Txns != ref.Txns || got.Edges != ref.Edges {
			t.Fatalf("%s/%s/%s par %d: txns/edges %d/%d, serial %d/%d",
				tag, name, lvl, par, got.Txns, got.Edges, ref.Txns, ref.Edges)
		}
		if !reflect.DeepEqual(got.Anomalies, ref.Anomalies) {
			t.Fatalf("%s/%s/%s par %d: anomalies diverge\nserial: %v\npar:    %v",
				tag, name, lvl, par, ref.Anomalies, got.Anomalies)
		}
	}
}

// engines lists every (engine, level) pair with a parallel phase: the
// MTC dense-RT enumeration and the Cobra/PolySI prune pipelines.
var parEngines = []struct {
	name string
	lvl  checker.Level
}{
	{"mtc", core.SSER}, // parallel dense real-time enumeration
	{"mtc", core.SER},
	{"mtc", core.SI},
	{"cobra", core.SER}, // parallel SER prune
	{"polysi", core.SI}, // parallel SI prune
}

// TestDifferentialSerialVsParallel replays >= 1000 randomized histories
// through every parallel-capable engine at parallelism 1, 2 and 4.
func TestDifferentialSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow under -short")
	}
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	histories := 0
	check := func(h *history.History, tag string) {
		for _, e := range parEngines {
			parCheck(t, e.name, e.lvl, h, tag)
		}
		histories++
	}
	for seed := int64(1); seed <= 130; seed++ {
		// Clean MT histories from every store mode: timestamps present, so
		// the SSER dense-RT path runs for real.
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 6, Objects: 4,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI} {
			check(runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H, mode.String())
		}
		// General-transaction histories: blind writes leave undetermined
		// writer pairs, so the Cobra/PolySI prune loop has real shards.
		wg := workload.GenerateGT(workload.GTConfig{
			Sessions: 3, Txns: 6, Objects: 3, OpsPerTxn: 3, Seed: seed,
		})
		check(runner.Run(kv.NewStore(kv.ModeSerializable), wg, runner.Config{Retries: 2}).H, "gt")
		// Fault-injected histories: violating verdicts (anomalies, cycles,
		// unsat prunes) must stay identical too.
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for i := 0; i < 5; i++ {
			b := bugs[(int(seed)+i)%len(bugs)]
			check(runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H, b.Name)
		}
	}
	if histories < 1000 {
		t.Fatalf("differential corpus too small: %d histories", histories)
	}
	t.Logf("compared %d histories across %d engine/level pairs at parallelism 1, 2, 4",
		histories, len(parEngines))
}
