package client

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 forms — delay-seconds and
// HTTP-date — plus the cap that keeps a bad header from stalling the
// client for minutes, and the malformed fallbacks.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	httpDate := func(at time.Time) string { return at.UTC().Format(http.TimeFormat) }
	cases := []struct {
		name string
		ra   string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"seconds", "2", 2 * time.Second, true},
		{"zero seconds", "0", 0, true},
		{"seconds above cap", "600", maxRetryAfter, true},
		{"negative seconds", "-3", 0, false},
		{"http date ahead", httpDate(now.Add(5 * time.Second)), 5 * time.Second, true},
		{"http date far ahead", httpDate(now.Add(time.Hour)), maxRetryAfter, true},
		{"http date in the past", httpDate(now.Add(-time.Minute)), 0, true},
		{"garbage", "soon", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.ra, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.ra, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestBackoffUsesRetryAfterDate wires the date form through backoff
// itself: an HTTP-date a second out must beat the doubling default, and
// a malformed header must fall back to it.
func TestBackoffUsesRetryAfterDate(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
	if d := backoff(resp, 0); d < 8*time.Second || d > maxRetryAfter {
		t.Fatalf("date-form backoff = %v, want ~10s (capped at %v)", d, maxRetryAfter)
	}
	resp.Header.Set("Retry-After", "not-a-time")
	if d := backoff(resp, 1); d != 100*time.Millisecond {
		t.Fatalf("malformed header must fall back to doubling backoff, got %v", d)
	}
	if d := backoff(nil, 0); d != 50*time.Millisecond {
		t.Fatalf("nil response backoff = %v, want 50ms", d)
	}
	// The doubling default is capped too: high attempt counts must not
	// overflow into negative (instant-retry) durations or exceed the cap.
	for _, attempt := range []int{10, 40, 100} {
		if d := backoff(nil, attempt); d != maxRetryAfter {
			t.Fatalf("attempt %d backoff = %v, want cap %v", attempt, d, maxRetryAfter)
		}
	}
}
