package client_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"mtc/pkg/client"
	"mtc/pkg/mtc"
)

// TestSessionSendBinary drives two sessions with the same transactions,
// one over JSON Send and one over the MTCB batch endpoint, and demands
// the running statuses agree — including the lost-update flip.
func TestSessionSendBinary(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	js, _, err := c.OpenSession(ctx, "SI", "x")
	if err != nil {
		t.Fatalf("open json session: %v", err)
	}
	bs, _, err := c.OpenSession(ctx, "SI", "x")
	if err != nil {
		t.Fatalf("open binary session: %v", err)
	}
	txns := []client.TxnPayload{
		client.Txn(0, mtc.Read("x", 0), mtc.Write("x", 1)),
		client.Txn(1, mtc.Read("x", 0), mtc.Write("x", 2)), // lost update
	}
	jst, err := js.Send(ctx, txns...)
	if err != nil {
		t.Fatalf("json send: %v", err)
	}
	bst, err := bs.SendBinary(ctx, txns...)
	if err != nil {
		t.Fatalf("binary send: %v", err)
	}
	if bst.Txns != jst.Txns || bst.OK != jst.OK || bst.Edges != jst.Edges {
		t.Fatalf("binary status diverges from json:\nbinary: %+v\njson:   %+v", bst, jst)
	}
	if bst.OK || bst.Report == nil {
		t.Fatalf("lost update not caught over the binary path: %+v", bst)
	}
	if st, err := bs.Verdict(ctx, true); err != nil || !st.Final {
		t.Fatalf("finalize binary session: %+v %v", st, err)
	}
}

// TestSendBinaryRequiresCommitted: the binary encoder refuses payloads
// whose Committed field was never set instead of guessing.
func TestSendBinaryRequiresCommitted(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sess, _, err := c.OpenSession(ctx, "SI", "x")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.SendBinary(ctx, client.TxnPayload{Sess: 0, Ops: []mtc.Op{mtc.Write("x", 1)}})
	if err == nil || !strings.Contains(err.Error(), "Committed") {
		t.Fatalf("missing Committed not rejected: %v", err)
	}
}
