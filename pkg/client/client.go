// Package client is the typed Go client of the v1 checking service
// served by cmd/mtc-serve. It wraps the async job API (submit, poll,
// event stream, cancel), the streaming session API, and the registry
// listing, with context support on every call and automatic retry —
// honouring Retry-After — on 429 and transient 5xx responses.
//
// A minimal round-trip:
//
//	c := client.New("http://localhost:8080")
//	job, err := c.SubmitJob(ctx, client.JobRequest{Level: "SER", History: h})
//	job, err = c.WaitJob(ctx, job.ID)        // polls until terminal
//	fmt.Println(job.Report.OK)
//
// or, in one call, report, err := c.Check(ctx, req).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mtc/internal/api"
	"mtc/internal/history"
	"mtc/pkg/mtc"
)

// Wire types, re-exported so callers need only this package.
type (
	// JobRequest describes one whole-history check submission.
	JobRequest = api.JobRequest
	// Job is the server's job status document.
	Job = api.Job
	// JobEvent is one line of the job event stream.
	JobEvent = api.JobEvent
	// CheckerInfo describes one registered engine.
	CheckerInfo = api.CheckerInfo
	// SessionStatus is the streaming session status document.
	SessionStatus = api.SessionStatus
	// TxnPayload is the wire form of one streamed transaction.
	TxnPayload = api.TxnPayload
	// FabricStatus is the distributed-fabric status document: registered
	// workers, their queues, and fabric job progress.
	FabricStatus = api.FabricStatus
)

// Job states, re-exported.
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// APIError is a non-2xx v1 response decoded from the error envelope.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	RequestID  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mtc api: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the maximum retry attempts for retryable responses
// (429 and transient 5xx). 0 disables retry.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithPollInterval sets the WaitJob poll interval (default 50ms).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.poll = d } }

// Client talks to one v1 server. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	poll    time.Duration
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: http.DefaultClient, retries: 3, poll: 50 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether the response status warrants a retry.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// maxRetryAfter caps the delay a Retry-After header can impose. RFC 9110
// allows both delay-seconds and an HTTP-date, and a misconfigured (or
// hostile) server can send either form minutes or hours out; a client
// stalled that long looks hung, so anything above the cap is clamped.
const maxRetryAfter = 30 * time.Second

// backoff picks the delay before a retry: the server's Retry-After when
// present — either delay-seconds or an HTTP-date per RFC 9110 — else a
// doubling backoff from 50ms. Both forms are capped at maxRetryAfter
// (the doubling form would otherwise overflow at high attempt counts).
func backoff(resp *http.Response, attempt int) time.Duration {
	if resp != nil {
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			return d
		}
	}
	if attempt > 30 { // 50ms << 30 already exceeds any sane cap
		return maxRetryAfter
	}
	d := 50 * time.Millisecond << uint(attempt)
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// parseRetryAfter interprets a Retry-After value relative to now. It
// returns ok=false on an absent or malformed header (the caller falls
// back to its own backoff), and a delay clamped to [0, maxRetryAfter]
// otherwise; a date in the past means "retry now".
func parseRetryAfter(ra string, now time.Time) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(ra); err == nil {
		d = at.Sub(now)
		if d < 0 {
			d = 0
		}
	} else {
		return 0, false
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// do issues one request with retry, decoding a 2xx body into out (when
// non-nil) and a failing body into an *APIError. body is re-marshalled
// per attempt, so retries are safe.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	return c.doBytes(ctx, method, path, "application/json", payload, out)
}

// doBytes is do with a pre-encoded request body: the retry loop, error
// envelope decoding and 2xx JSON response decoding of do, but the
// payload bytes (and their content type) are the caller's — the raw
// path SendBinary posts MTCB frames through.
func (c *Client) doBytes(ctx context.Context, method, path, contentType string, payload []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
		} else {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				lastErr = rerr
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				if out == nil || len(raw) == 0 {
					return nil
				}
				return json.Unmarshal(raw, out)
			default:
				apiErr := decodeError(resp.StatusCode, raw)
				if !retryable(resp.StatusCode) {
					return apiErr
				}
				lastErr = apiErr
			}
		}
		if attempt >= c.retries {
			return lastErr
		}
		select {
		case <-time.After(backoff(resp, attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// decodeError maps a failing body to an *APIError, tolerating both the
// v1 envelope and the legacy flat {"error": "..."} shape.
func decodeError(status int, raw []byte) *APIError {
	var env api.ErrorResponse
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Message != "" {
		return &APIError{StatusCode: status, Code: env.Error.Code, Message: env.Error.Message, RequestID: env.RequestID}
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &flat); err == nil && flat.Error != "" {
		return &APIError{StatusCode: status, Message: flat.Error}
	}
	return &APIError{StatusCode: status, Message: string(raw)}
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Checkers lists the registered verification engines.
func (c *Client) Checkers(ctx context.Context) ([]CheckerInfo, error) {
	var out []CheckerInfo
	err := c.do(ctx, http.MethodGet, "/v1/checkers", nil, &out)
	return out, err
}

// FabricStatus reads the distributed-fabric status of a coordinator
// server (mtc-serve -fabric-wal); other servers answer an *APIError
// with status 400. Jobs run on the fabric when submitted with
// JobRequest.Distributed set.
func (c *Client) FabricStatus(ctx context.Context) (FabricStatus, error) {
	var out FabricStatus
	err := c.do(ctx, http.MethodGet, "/v1/fabric/status", nil, &out)
	return out, err
}

// SubmitJob submits one whole-history check and returns the accepted
// job document (state "queued"). A full queue is retried with backoff
// before surfacing the 429.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// GetJob polls one job's status.
func (c *Client) GetJob(ctx context.Context, id string) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// ListJobs lists the server's known jobs.
func (c *Client) ListJobs(ctx context.Context) ([]Job, error) {
	var out api.JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// CancelJob cancels and forgets a job; a running worker stops at its
// next cancellation poll.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// WaitJob polls a job until it reaches a terminal state (done, failed
// or canceled) or ctx fires.
func (c *Client) WaitJob(ctx context.Context, id string) (Job, error) {
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return job, err
		}
		if api.JobTerminal(job.State) {
			return job, nil
		}
		select {
		case <-time.After(c.poll):
		case <-ctx.Done():
			return job, ctx.Err()
		}
	}
}

// Check submits a job and waits for its verdict — the synchronous
// convenience over the async API. A failed job surfaces as an error.
func (c *Client) Check(ctx context.Context, req JobRequest) (*mtc.Report, error) {
	job, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, err
	}
	job, err = c.WaitJob(ctx, job.ID)
	if err != nil {
		return nil, err
	}
	switch job.State {
	case JobDone:
		return job.Report, nil
	case JobCanceled:
		return nil, fmt.Errorf("client: job %s was canceled", job.ID)
	default:
		return nil, fmt.Errorf("client: job %s failed: %s", job.ID, job.Error)
	}
}

// StreamEvents follows a job's NDJSON event stream, invoking fn per
// event until the job is terminal, fn returns an error, or ctx fires.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(JobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return decodeError(resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: bad event line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if api.JobTerminal(ev.State) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// Session is a live streaming verification session on the server.
type Session struct {
	c  *Client
	ID string
}

// SessionOpts configures OpenSessionOpts.
type SessionOpts struct {
	// Level is the isolation level to verify online: SER or SI.
	Level string
	// Keys seed the session with an initial transaction writing 0 to
	// each key.
	Keys []mtc.Key
	// Window bounds the session's server-side verification memory: the
	// online checker is compacted every window/2 transactions, so a
	// long-lived stream holds O(window) state on the server instead of
	// growing without bound. 0 accepts the server's default window.
	Window int
}

// OpenSession opens a streaming session at the level (SER or SI), with
// an initial transaction writing 0 to each key.
func (c *Client) OpenSession(ctx context.Context, level string, keys ...mtc.Key) (*Session, SessionStatus, error) {
	return c.OpenSessionOpts(ctx, SessionOpts{Level: level, Keys: keys})
}

// OpenSessionOpts opens a streaming session with full control over the
// session parameters, including the epoch-compaction window.
func (c *Client) OpenSessionOpts(ctx context.Context, opts SessionOpts) (*Session, SessionStatus, error) {
	var st SessionStatus
	req := api.SessionRequest{Level: opts.Level, Keys: opts.Keys, Window: opts.Window}
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &st)
	if err != nil {
		return nil, st, err
	}
	return &Session{c: c, ID: st.ID}, st, nil
}

// Send feeds transactions into the session and returns the running
// status; the report flips as soon as a violation is detected.
func (s *Session) Send(ctx context.Context, txns ...TxnPayload) (SessionStatus, error) {
	var st SessionStatus
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/txns", txns, &st)
	return st, err
}

// SendBinary feeds transactions as one MTCB binary frame (POST
// /v1/sessions/{id}/batch): the server decodes it through a per-session
// arena with no per-transaction JSON materialization, so this is the
// high-throughput ingest path for large batches. Semantically identical
// to Send — same transactions, same running status back. Every payload
// must carry an explicit Committed flag (the binary record has no
// "unknown" state), and the batch is atomic on the server: a frame that
// fails to encode here or decode there changes nothing.
func (s *Session) SendBinary(ctx context.Context, txns ...TxnPayload) (SessionStatus, error) {
	var st SessionStatus
	var buf bytes.Buffer
	bw, err := history.NewBinaryWriter(&buf, 0)
	if err != nil {
		return st, fmt.Errorf("client: encode mtcb frame: %w", err)
	}
	for i, p := range txns {
		if p.Committed == nil {
			return st, fmt.Errorf("client: txn %d: missing required field Committed", i)
		}
		t := history.Txn{
			ID: i, Session: p.Sess, Ops: p.Ops, Committed: *p.Committed,
			Start: p.Start, Finish: p.Finish,
		}
		if err := bw.WriteTxn(t); err != nil {
			return st, fmt.Errorf("client: encode mtcb frame: %w", err)
		}
	}
	if err := bw.Close(); err != nil {
		return st, fmt.Errorf("client: encode mtcb frame: %w", err)
	}
	err = s.c.doBytes(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/batch", "application/octet-stream", buf.Bytes(), &st)
	return st, err
}

// Verdict reads the session verdict so far; final=true finalizes the
// stream (classifying still-unresolved reads) and closes the session to
// further transactions.
func (s *Session) Verdict(ctx context.Context, final bool) (SessionStatus, error) {
	path := "/v1/sessions/" + s.ID + "/verdict"
	if final {
		path += "?final=1"
	}
	var st SessionStatus
	err := s.c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Close discards the session, freeing its server-side slot.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.ID, nil, nil)
}

// Txn builds a committed TxnPayload for Send.
func Txn(sess int, ops ...mtc.Op) TxnPayload {
	committed := true
	return TxnPayload{Sess: sess, Ops: ops, Committed: &committed}
}
