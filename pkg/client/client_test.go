package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mtc/internal/history"
	"mtc/internal/mtcserve"
	"mtc/pkg/client"
	"mtc/pkg/mtc"
)

// newServer spins up the real v1 handler for the SDK to talk to.
func newServer(t *testing.T) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(mtcserve.Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL)
}

// TestJobRoundTrip is the acceptance path: submit a job through the SDK,
// poll to the verdict, and read the structured report.
func TestJobRoundTrip(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	// Ten base engines plus their component-sharded twins.
	infos, err := c.Checkers(ctx)
	if err != nil || len(infos) != 20 {
		t.Fatalf("checkers: %v %v", infos, err)
	}

	job, err := c.SubmitJob(ctx, client.JobRequest{Level: "SER", History: history.SerialHistory(25, "x", "y")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.State != client.JobQueued && job.State != client.JobRunning && job.State != client.JobDone {
		t.Fatalf("submitted state: %+v", job)
	}
	job, err = c.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if job.State != client.JobDone || job.Report == nil || !job.Report.OK || job.Report.Checker != "mtc" {
		t.Fatalf("verdict: %+v", job)
	}

	// The violating fixture round-trips its structured counterexample.
	rep, err := c.Check(ctx, client.JobRequest{Level: "SER", History: history.FixtureByName("WriteSkew").H})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.OK || len(rep.Cycle) == 0 {
		t.Fatalf("write-skew report: %+v", rep)
	}
}

// TestStreamEvents follows the NDJSON stream through the SDK.
func TestStreamEvents(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	job, err := c.SubmitJob(ctx, client.JobRequest{Level: "SI", History: history.SerialHistory(10, "x")})
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	err = c.StreamEvents(ctx, job.ID, func(ev client.JobEvent) error {
		states = append(states, ev.State)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v (states %v)", err, states)
	}
	if len(states) == 0 || states[0] != client.JobQueued || states[len(states)-1] != client.JobDone {
		t.Fatalf("states = %v", states)
	}
}

// TestCancelJob cancels a long SAT-backed job through the SDK and
// asserts the server forgets it.
func TestCancelJob(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	slow := history.BlindWriteHistory(4, 150)
	job, err := c.SubmitJob(ctx, client.JobRequest{Checker: "cobra", Level: "SER", TimeoutMillis: 60000, History: slow})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CancelJob(ctx, job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.GetJob(ctx, job.ID); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("canceled job must 404, got %v", err)
	}
}

// TestAPIErrorSurface decodes the v1 envelope into a typed error.
func TestAPIErrorSurface(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()
	_, err := c.SubmitJob(ctx, client.JobRequest{Checker: "bogus", History: history.SerialHistory(2)})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.StatusCode != 400 || apiErr.Code != "unknown_checker" || !strings.Contains(apiErr.Message, "bogus") {
		t.Fatalf("error surface: %+v", apiErr)
	}
	if apiErr.RequestID == "" {
		t.Fatal("request id must round-trip into the error")
	}
}

// TestSessionLifecycle drives the streaming API through the SDK: open,
// feed a violating pair, observe the flip, finalize, close.
func TestSessionLifecycle(t *testing.T) {
	_, c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sess, st, err := c.OpenSession(ctx, "SI", "x")
	if err != nil || st.Txns != 1 {
		t.Fatalf("open: %+v %v", st, err)
	}
	st, err = sess.Send(ctx,
		client.Txn(0, mtc.Read("x", 0), mtc.Write("x", 1)),
		client.Txn(1, mtc.Read("x", 0), mtc.Write("x", 2)), // lost update
	)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if st.OK || st.Report == nil || !strings.Contains(st.Report.Detail, "DIVERGENCE") {
		t.Fatalf("lost update not caught: %+v", st)
	}
	st, err = sess.Verdict(ctx, true)
	if err != nil || !st.Final {
		t.Fatalf("finalize: %+v %v", st, err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestRetryOn429 exercises the SDK's Retry-After handling: with a
// one-worker, one-deep server, a burst of submissions eventually drains
// because the client retries 429s instead of failing.
func TestRetryOn429(t *testing.T) {
	srv := mtcserve.NewServer(nil)
	srv.Workers = 1
	srv.QueueDepth = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetries(5))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	h := history.SerialHistory(10, "x")
	for i := 0; i < 6; i++ {
		if _, err := c.SubmitJob(ctx, client.JobRequest{Level: "SI", History: h}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	// And with retry disabled the 429 surfaces as a typed error — fill
	// the pool with slow jobs first.
	noRetry := client.New(ts.URL, client.WithRetries(0))
	slow := history.BlindWriteHistory(4, 150)
	var sawBusy bool
	var ids []string
	for i := 0; i < 8; i++ {
		job, err := noRetry.SubmitJob(ctx, client.JobRequest{Checker: "cobra", Level: "SER", TimeoutMillis: 30000, History: slow})
		if err != nil {
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 {
				t.Fatalf("want 429 APIError, got %v", err)
			}
			sawBusy = true
			break
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		_ = noRetry.CancelJob(ctx, id)
	}
	if !sawBusy {
		t.Fatal("never saw the queue fill")
	}
}

// TestWindowedSessionRoundTrip drives a windowed streaming session
// through the SDK: the window is echoed, compaction kicks in while
// transactions stream, and the finalized verdict stays OK.
func TestWindowedSessionRoundTrip(t *testing.T) {
	ts, c := newServer(t)
	defer ts.Close()
	ctx := context.Background()

	sess, st, err := c.OpenSessionOpts(ctx, client.SessionOpts{
		Level: "SER", Keys: []mtc.Key{"x"}, Window: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Window != 32 {
		t.Fatalf("window not echoed: %+v", st)
	}
	last := mtc.Value(0)
	for i := 0; i < 200; i++ {
		v := mtc.Value(i + 1)
		st, err = sess.Send(ctx, client.Txn(i%3, mtc.Read("x", last), mtc.Write("x", v)))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		last = v
	}
	if !st.OK || st.CompactedEpochs == 0 || st.LiveTxns >= 150 {
		t.Fatalf("compaction did not engage: %+v", st)
	}
	st, err = sess.Verdict(ctx, true)
	if err != nil || !st.Final || !st.OK {
		t.Fatalf("final verdict: %+v (%v)", st, err)
	}
	if st.Txns != 201 || st.Report == nil || st.Report.CompactedEpochs != st.CompactedEpochs {
		t.Fatalf("verdict stats: %+v", st)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestJobWindowOption: a job carrying a window runs the windowed replay
// and reports its compaction stats in the final report.
func TestJobWindowOption(t *testing.T) {
	ts, c := newServer(t)
	defer ts.Close()
	ctx := context.Background()

	b := mtc.NewHistoryBuilder("x")
	last := mtc.Value(0)
	for i := 0; i < 300; i++ {
		v := mtc.Value(i + 1)
		b.Txn(i%3, mtc.Read("x", last), mtc.Write("x", v))
		last = v
	}
	h := b.Build()
	rep, err := c.Check(ctx, client.JobRequest{
		Checker: "mtc-incremental", Level: "SER", Window: 64, History: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.CompactedEpochs == 0 || rep.CompactedTxns == 0 {
		t.Fatalf("windowed job did not compact: %+v", rep)
	}
	// Negative windows are rejected up front.
	if _, err := c.SubmitJob(ctx, client.JobRequest{Window: -1, History: h}); err == nil {
		t.Fatal("negative window must be rejected")
	}
}
