// Package mtc is the stable public surface of the MTC isolation-checking
// toolkit. It re-exports the history model, the checker registry and the
// Report verdict type from the internal packages, so external programs
// can build histories, run any registered verification engine with
// context cancellation, and consume structured counterexamples — without
// importing internal paths (which the Go toolchain forbids outside this
// module).
//
// A minimal embedding:
//
//	b := mtc.NewHistoryBuilder("x")
//	b.Txn(0, mtc.Read("x", 0), mtc.Write("x", 1))
//	rep, err := mtc.Check(ctx, "mtc", b.Build(), mtc.Options{Level: mtc.SER})
//
// Long histories need not be checked with memory proportional to their
// length: Options.Window selects the epoch-windowed replay of the
// mtc-incremental engine, which compacts the settled prefix as it goes
// and keeps O(window) state with verdicts identical to the unbounded
// check (Report.CompactedEpochs reports how often it compacted).
//
// Multi-tenant and other key-disjoint histories can be verified with
// structural parallelism above the engine: every engine has a
// component-sharded twin (Sharded(name), e.g. "mtc-sharded") that
// partitions the history into key/session-disjoint components and
// checks up to Options.Shard of them concurrently, with merged verdicts
// identical to unsharded checking (Report.ShardComponents reports the
// decomposition; see docs/sharding.md).
//
// For the HTTP service, see pkg/client.
package mtc

import (
	"context"
	"io"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/shard"
)

// Core history model.
type (
	// History is a transactional history: transactions grouped into
	// sessions, each a sequence of read/write operations.
	History = history.History
	// Txn is one transaction of a history.
	Txn = history.Txn
	// Op is one read or write operation.
	Op = history.Op
	// Key names an object; Value is the (unique) value written to it.
	Key   = history.Key
	Value = history.Value
	// HistoryBuilder assembles histories programmatically.
	HistoryBuilder = history.Builder
	// Anomaly is one structured pre-check violation in a Report.
	Anomaly = history.Anomaly
	// CycleEdge is one typed dependency edge of a counterexample cycle.
	CycleEdge = graph.Edge
)

// Checker abstraction.
type (
	// Level names an isolation level (SSER, SER, SI, CAUSAL, RA or RC).
	Level = checker.Level
	// Options tunes a checker run.
	Options = checker.Options
	// Report is the normalised, JSON-serializable verdict of a run.
	Report = checker.Report
	// PhaseTiming is the wall-clock cost of one engine phase.
	PhaseTiming = checker.PhaseTiming
	// Checker is one verification engine.
	Checker = checker.Checker
	// Registry maps checker names to engines.
	Registry = checker.Registry
	// UnsupportedHistoryError marks a history an engine cannot process.
	UnsupportedHistoryError = checker.UnsupportedHistoryError
	// RungVerdict is one isolation level's verdict in a lattice profile.
	RungVerdict = checker.RungVerdict
	// GuaranteeVerdict is one session guarantee's verdict in a profile.
	GuaranteeVerdict = checker.GuaranteeVerdict
)

// The supported isolation levels, strongest first.
const (
	SSER   = core.SSER   // strict serializability
	SER    = core.SER    // serializability
	SI     = core.SI     // snapshot isolation
	CAUSAL = core.CAUSAL // causal consistency
	RA     = core.RA     // read atomicity
	RC     = core.RC     // read committed
)

// ParseLevel maps a level name (any case) to its Level.
func ParseLevel(s string) (Level, error) { return checker.ParseLevel(s) }

// Levels lists the supported isolation levels, weakest to strongest.
func Levels() []Level { return checker.AllLevels() }

// Profile evaluates the whole isolation lattice plus the four session
// guarantees (RYW, MR, MW, WFR) in one pass over h and reports the
// strongest satisfied level in Report.StrongestLevel, with per-rung
// verdicts in Report.Rungs and guarantee verdicts in Report.Guarantees.
// The top-level OK/counterexample fields reflect opts.Level (default
// SI), so Profile is a drop-in replacement for a single-level Check.
func Profile(ctx context.Context, h *History, opts Options) (Report, error) {
	return checker.Run(ctx, "profile", h, opts)
}

// DefaultParallelism returns the worker-pool size the engines use when
// Options.Parallelism is left zero: GOMAXPROCS. Set Options.Parallelism
// to 1 to force the serial paths; verdicts are identical at every
// setting, only wall-clock changes.
func DefaultParallelism() int { return graph.Parallelism(0) }

// Sharded maps an engine name to its component-sharded twin in the
// registry ("mtc" -> "mtc-sharded"); already-sharded names pass through.
// The twin decomposes every history into its key/session-disjoint
// components and checks up to Options.Shard of them concurrently through
// the base engine, merging the per-component reports into one verdict
// with external transaction positions preserved.
func Sharded(name string) string { return shard.Name(name) }

// Check runs the named engine from the default registry on h under ctx.
// Cancellation stops the engine inside its hot loops; the returned error
// is then ctx's error. Use IsUnsupported to detect histories the engine
// cannot process.
func Check(ctx context.Context, name string, h *History, opts Options) (Report, error) {
	return checker.Run(ctx, name, h, opts)
}

// IsUnsupported reports whether err marks a history the engine cannot
// process (as opposed to a verification failure or a context error).
func IsUnsupported(err error) bool { return checker.IsUnsupported(err) }

// Checkers lists the names of the registered engines.
func Checkers() []string { return checker.Names() }

// LookupChecker resolves a registered engine by name.
func LookupChecker(name string) (Checker, error) { return checker.Lookup(name) }

// NewHistoryBuilder returns a builder whose initial transaction writes
// value 0 to each of the given keys.
func NewHistoryBuilder(initKeys ...Key) *HistoryBuilder {
	return history.NewBuilder(initKeys...)
}

// Read builds a read operation observing value v of key k.
func Read(k Key, v Value) Op { return history.R(k, v) }

// Write builds a write operation setting key k to value v.
func Write(k Key, v Value) Op { return history.W(k, v) }

// ReadHistory parses the standard JSON encoding and validates it.
func ReadHistory(r io.Reader) (*History, error) { return history.ReadJSON(r) }

// WriteHistory serializes a history in the standard JSON encoding.
func WriteHistory(w io.Writer, h *History) error { return history.WriteJSON(w, h) }

// LoadHistory reads a JSON history from a file.
func LoadHistory(path string) (*History, error) { return history.LoadFile(path) }

// SaveHistory writes a history to a file as JSON.
func SaveHistory(path string, h *History) error { return history.SaveFile(path, h) }
