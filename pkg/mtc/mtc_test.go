package mtc_test

import (
	"context"
	"testing"

	"mtc/pkg/mtc"
)

// TestProfilePublicSurface drives the lattice profiler through the
// public API only: build a fractured-read history, profile it, and
// check the strongest-level verdict plus rung/guarantee shapes.
func TestProfilePublicSurface(t *testing.T) {
	// T1 updates x and y atomically (reads make the version order
	// derivable); T2 reads T1's x but init's y — a fractured read:
	// violates RA (and everything above), not RC.
	b := mtc.NewHistoryBuilder("x", "y")
	b.Txn(0, mtc.Read("x", 0), mtc.Write("x", 1), mtc.Read("y", 0), mtc.Write("y", 1))
	b.Txn(1, mtc.Read("x", 1), mtc.Read("y", 0))
	rep, err := mtc.Profile(context.Background(), b.Build(), mtc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StrongestLevel != mtc.RC {
		t.Fatalf("strongest = %s, want RC", rep.StrongestLevel)
	}
	if len(rep.Rungs) != len(mtc.Levels()) {
		t.Fatalf("%d rungs, want %d", len(rep.Rungs), len(mtc.Levels()))
	}
	if len(rep.Guarantees) != 4 {
		t.Fatalf("%d guarantees, want 4", len(rep.Guarantees))
	}
	// The top-level verdict reflects the default requested level (SI),
	// so Profile drops in for a single-level Check.
	if rep.Level != mtc.SI || rep.OK {
		t.Fatalf("top-level verdict = %s ok=%v, want SI violated", rep.Level, rep.OK)
	}
}

// TestLevelsOrder pins the public lattice enumeration, weakest first.
func TestLevelsOrder(t *testing.T) {
	want := []mtc.Level{mtc.RC, mtc.RA, mtc.CAUSAL, mtc.SI, mtc.SER, mtc.SSER}
	got := mtc.Levels()
	if len(got) != len(want) {
		t.Fatalf("Levels() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Levels() = %v, want %v", got, want)
		}
	}
}
