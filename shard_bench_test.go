// shard_bench_test.go benchmarks component-sharded verification on a
// multi-tenant history — the headline scaling of the shard layer. The
// workload is a fixed-seed 4-tenant GT history checked through the
// Cobra SER baseline (whose per-component prune/solve work dominates the
// O(n) partition pass), with the engine-internal parallelism pinned to 1
// so the axis measures pure component fan-out: BenchmarkShard1 is the
// sharded-but-serial floor, BenchmarkShard4 the acceptance bar (>= 2x
// at 4 workers on 4 tenants on a multi-core host), and
// BenchmarkShardGOMAXPROCS whatever the host offers. On a single-core
// machine all three coincide.
package main

import (
	"context"
	"sync"
	"testing"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/shard"
	"mtc/internal/workload"
)

var (
	shardBenchOnce sync.Once
	shardBenchHist *history.History
)

// shardBenchHistory executes the fixed 4-tenant GT workload once and
// reuses the resulting history across the Shard* benchmarks.
func shardBenchHistory() *history.History {
	shardBenchOnce.Do(func() {
		w := workload.GenerateGT(workload.GTConfig{
			Sessions: 8, Txns: 150, Objects: 8, OpsPerTxn: 4,
			Dist: workload.Uniform, Seed: 42, Tenants: 4,
		})
		shardBenchHist = runner.Run(kv.NewStore(kv.ModeSerializable), w, runner.Config{Retries: 4}).H
	})
	return shardBenchHist
}

// benchShard checks the 4-tenant history through cobra-sharded with the
// given component worker bound (0 = GOMAXPROCS).
func benchShard(b *testing.B, workers int) {
	h := shardBenchHistory()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := checker.Run(ctx, shard.Name("cobra"), h,
			checker.Options{Level: core.SER, Parallelism: 1, Shard: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK || rep.ShardComponents != 4 {
			b.Fatalf("unexpected report: ok=%v components=%d", rep.OK, rep.ShardComponents)
		}
	}
}

func BenchmarkShard1(b *testing.B) { benchShard(b, 1) }

func BenchmarkShard4(b *testing.B) { benchShard(b, 4) }

func BenchmarkShardGOMAXPROCS(b *testing.B) { benchShard(b, 0) }
