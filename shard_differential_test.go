// shard_differential_test.go property-tests component-sharded
// verification against the unsharded engines: on every history — clean
// or fault-injected, single- or multi-tenant, MT or GT shaped — each
// engine's "-sharded" wrapper must return the same verdict, transaction
// and edge counts, and (for the batch engines) the identical anomaly set
// with external transaction ids, at shard parallelism 1, 2 and
// GOMAXPROCS. This is the contract the Shard knob advertises
// (checker.Options): only wall-clock may change.
package main

import (
	"context"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/shard"
	"mtc/internal/workload"
)

// canonAnomalies returns a canonically sorted copy (external position,
// kind, key, value) so anomaly lists compare as multisets: the merged
// sharded report orders by external position, the engines by scan order.
func canonAnomalies(as []history.Anomaly) []history.Anomaly {
	out := append([]history.Anomaly(nil), as...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Value < b.Value
	})
	return out
}

// shardLevels is the shard-parallelism axis of the differential.
var shardLevels = []int{1, 2, runtime.GOMAXPROCS(0)}

// shardCheck runs one engine/level on one history unsharded and through
// the sharded wrapper at every shard level, demanding equivalent
// reports.
func shardCheck(t *testing.T, name string, lvl checker.Level, h *history.History, tag string) {
	t.Helper()
	ctx := context.Background()
	ref, err := checker.Run(ctx, name, h, checker.Options{Level: lvl})
	if err != nil {
		t.Fatalf("%s/%s/%s: unsharded run failed: %v", tag, name, lvl, err)
	}
	batch := name != "mtc-incremental" // incremental reports only the first violation
	p := shard.Split(h)
	for _, sh := range shardLevels {
		got, err := checker.Run(ctx, shard.Name(name), h, checker.Options{Level: lvl, Shard: sh})
		if err != nil {
			t.Fatalf("%s/%s/%s shard %d: %v", tag, name, lvl, sh, err)
		}
		if got.OK != ref.OK {
			t.Fatalf("%s/%s/%s shard %d: OK=%v, unsharded OK=%v\nunsharded: %s\nsharded:   %s",
				tag, name, lvl, sh, got.OK, ref.OK, ref.Detail, got.Detail)
		}
		// Edge counts compare on clean verdicts only: a violating engine
		// exits early (pre-check failure skips graph construction, the
		// incremental replay stops at the offense), while the other
		// sharded components still complete their share. Transaction
		// counts always compare for the batch engines.
		if batch && got.Txns != ref.Txns {
			t.Fatalf("%s/%s/%s shard %d: txns %d, unsharded %d", tag, name, lvl, sh, got.Txns, ref.Txns)
		}
		if ref.OK && (got.Txns != ref.Txns || got.Edges != ref.Edges) {
			t.Fatalf("%s/%s/%s shard %d: txns/edges %d/%d, unsharded %d/%d",
				tag, name, lvl, sh, got.Txns, got.Edges, ref.Txns, ref.Edges)
		}
		if got.ShardComponents != maxInt(len(p.Components), 1) {
			t.Fatalf("%s/%s/%s shard %d: reported %d components, Split found %d",
				tag, name, lvl, sh, got.ShardComponents, len(p.Components))
		}
		refAs, gotAs := canonAnomalies(ref.Anomalies), canonAnomalies(got.Anomalies)
		if batch {
			// Batch engines report the full pre-check anomaly list: the
			// sharded concatenation must be the identical set, which also
			// pins the first offending transaction to the same position.
			if !reflect.DeepEqual(gotAs, refAs) {
				t.Fatalf("%s/%s/%s shard %d: anomalies diverge\nunsharded: %v\nsharded:   %v",
					tag, name, lvl, sh, refAs, gotAs)
			}
		} else if len(refAs) > 0 {
			// The incremental engine stops at the first violation; the
			// sharded merge must contain it, and its first offense can only
			// move earlier (another component's violation at a smaller
			// external position).
			if !containsAnomaly(gotAs, refAs[0]) {
				t.Fatalf("%s/%s/%s shard %d: unsharded counterexample %v missing from merged %v",
					tag, name, lvl, sh, refAs[0], gotAs)
			}
			if sf, rf := shard.FirstOffense(got), shard.FirstOffense(ref); sf < 0 || sf > rf {
				t.Fatalf("%s/%s/%s shard %d: merged first offense %d after unsharded %d",
					tag, name, lvl, sh, sf, rf)
			}
		}
		// Counterexample cycles never cross components — the decomposition
		// invariant, checked on both sides.
		assertCycleWithinComponent(t, p, ref.Cycle, tag+"/unsharded")
		assertCycleWithinComponent(t, p, got.Cycle, tag+"/sharded")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func containsAnomaly(as []history.Anomaly, want history.Anomaly) bool {
	for _, a := range as {
		if a == want {
			return true
		}
	}
	return false
}

// assertCycleWithinComponent verifies every transaction of a
// counterexample cycle lives in one component — the decomposition
// invariant that makes per-component verdicts exact. The init
// transaction (component -1) is replicated into every component and is
// compatible with any of them.
func assertCycleWithinComponent(t *testing.T, p *shard.Partition, cycle []graph.Edge, tag string) {
	t.Helper()
	comp := -1
	for _, e := range cycle {
		for _, id := range []int{e.From, e.To} {
			c := p.ComponentOf(id)
			if c < 0 {
				continue // ⊥T belongs to every component
			}
			if comp < 0 {
				comp = c
			} else if c != comp {
				t.Fatalf("%s: counterexample cycle crosses components %d and %d: %v", tag, comp, c, cycle)
			}
		}
	}
}

// shardEngines lists every (engine, level) pair of the differential:
// the linear-time MTC engine, its online incremental variant, and the
// Cobra/PolySI SAT baselines.
var shardEngines = []struct {
	name string
	lvl  checker.Level
}{
	{"mtc", core.SER},
	{"mtc", core.SI},
	{"mtc-incremental", core.SER},
	{"mtc-incremental", core.SI},
	{"cobra", core.SER},
	{"polysi", core.SI},
}

// TestDifferentialShardedVsUnsharded replays >= 1000 randomized
// histories — mixed tenant counts (1..4), clean and fault-injected, MT
// and GT shaped — through every engine's sharded wrapper at shard
// parallelism 1, 2 and GOMAXPROCS, asserting verdict equivalence with
// the unsharded engine.
func TestDifferentialShardedVsUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow under -short")
	}
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	histories := 0
	check := func(h *history.History, tag string) {
		for _, e := range shardEngines {
			shardCheck(t, e.name, e.lvl, h, tag)
		}
		histories++
	}
	for seed := int64(1); seed <= 130; seed++ {
		tenants := int(seed%4) + 1
		// Clean MT histories from every store mode, sharded into
		// 1..4 key-disjoint tenants.
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 6, Objects: 3,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
			Tenants: tenants,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI} {
			check(runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H, mode.String())
		}
		// General-transaction histories: blind writes leave undetermined
		// writer pairs, so the Cobra/PolySI prune and solve phases have
		// real per-component work.
		wg := workload.GenerateGT(workload.GTConfig{
			Sessions: 4, Txns: 6, Objects: 3, OpsPerTxn: 3, Seed: seed,
			Tenants: tenants,
		})
		check(runner.Run(kv.NewStore(kv.ModeSerializable), wg, runner.Config{Retries: 2}).H, "gt")
		// Fault-injected histories: violating verdicts (anomalies,
		// cycles, divergence) must merge identically too. Few objects per
		// tenant keep the bugs hot.
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
			Tenants: tenants,
		})
		for i := 0; i < 5; i++ {
			b := bugs[(int(seed)+i)%len(bugs)]
			check(runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H, b.Name)
		}
	}
	if histories < 1000 {
		t.Fatalf("differential corpus too small: %d histories", histories)
	}
	t.Logf("compared %d histories across %d engine/level pairs at shard parallelism %v",
		histories, len(shardEngines), shardLevels)
}
