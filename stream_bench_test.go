// stream_bench_test.go benchmarks long-stream online verification with
// and without epoch-windowed compaction. The windowed variant is the
// acceptance bar of the bounded-memory pipeline: one million clean RMW
// transactions verified with peak live heap bounded by the window
// (reported as the peak-heap-MB metric) while the unbounded variant
// grows linearly with the stream. Run with -benchmem to also see the
// cumulative allocation volume.
package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
)

// benchStream feeds n clean round-robin RMW transactions (every key
// overwritten every |keys| transactions, so values settle quickly) into
// the online checker, compacting every window/2 when windowed, and
// reports the peak post-GC heap.
func benchStream(b *testing.B, n, window int) {
	const (
		keys     = 256
		sessions = 8
	)
	keyNames := make([]history.Key, keys)
	for i := range keyNames {
		keyNames[i] = history.Key(fmt.Sprintf("k%03d", i))
	}
	var peak uint64
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		inc := core.NewIncremental(core.SER)
		inc.InitTxn(keyNames...)
		latest := make([]history.Value, keys)
		next := history.Value(1)
		for j := 0; j < n; j++ {
			k := j % keys
			ops := []history.Op{
				{Kind: history.OpRead, Key: keyNames[k], Value: latest[k]},
				{Kind: history.OpWrite, Key: keyNames[k], Value: next},
			}
			latest[k] = next
			next++
			if vio := inc.Add(history.Txn{Session: j % sessions, Ops: ops, Committed: true}); vio != nil {
				b.Fatalf("clean stream rejected at %d: %s", j, vio.Explain())
			}
			inc.MaybeCompact(window, 0, nil)
			if j%131072 == 0 {
				sample()
			}
		}
		sample()
		if r := inc.Finalize(); !r.OK {
			b.Fatalf("finalize rejected: %s", r.Explain())
		}
		if window > 0 && inc.CompactedTxns() < n/2 {
			b.Fatalf("compaction barely ran: %d of %d txns", inc.CompactedTxns(), n)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(n), "txns/stream")
}

// BenchmarkStream1MWindowed is the bounded-memory demonstration: 1M
// transactions under a 4096-transaction window.
func BenchmarkStream1MWindowed(b *testing.B) { benchStream(b, 1_000_000, 4096) }

// BenchmarkStream1MUnbounded is the O(history) baseline the window is
// measured against.
func BenchmarkStream1MUnbounded(b *testing.B) { benchStream(b, 1_000_000, 0) }

// BenchmarkStream100kWindowed / Unbounded are the quick-turnaround forms
// used by the CI bench gate (the 1M pair is for the full trajectory).
func BenchmarkStream100kWindowed(b *testing.B)  { benchStream(b, 100_000, 2048) }
func BenchmarkStream100kUnbounded(b *testing.B) { benchStream(b, 100_000, 0) }

// samplingSource wraps a TxnSource and samples the post-GC heap every
// 131072 transactions, mirroring benchStream's peak-heap probe.
type samplingSource struct {
	src    core.TxnSource
	n      int
	sample func()
}

func (s *samplingSource) Next() (history.Txn, error) {
	if s.n%131072 == 0 {
		s.sample()
	}
	s.n++
	return s.src.Next()
}

func (s *samplingSource) DeclaredSessions() int {
	if d, ok := s.src.(core.SessionDeclarer); ok {
		return d.DeclaredSessions()
	}
	return 0
}

// benchStreamNDJSON drives the same clean RMW stream through the full
// NDJSON pipeline: a generator goroutine encodes transactions with
// StreamWriter into a pipe, and CheckStream decodes and verifies them
// off the other end — codec and checker both holding one transaction at
// a time, so the windowed peak heap matches benchStream's bound even
// though a materialised capture of the stream would be ~100 bytes/txn.
func benchStreamNDJSON(b *testing.B, n, window int) {
	const (
		keys     = 256
		sessions = 8
	)
	keyNames := make([]history.Key, keys)
	initOps := make([]history.Op, keys)
	for i := range keyNames {
		keyNames[i] = history.Key(fmt.Sprintf("k%03d", i))
		initOps[i] = history.Op{Kind: history.OpWrite, Key: keyNames[i]}
	}
	var peak uint64
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		pr, pw := io.Pipe()
		go func() {
			sw, err := history.NewStreamWriter(pw, sessions)
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if err := sw.WriteTxn(history.Txn{ID: 0, Session: -1, Ops: initOps, Committed: true}); err != nil {
				pw.CloseWithError(err)
				return
			}
			latest := make([]history.Value, keys)
			next := history.Value(1)
			for j := 0; j < n; j++ {
				k := j % keys
				t := history.Txn{
					ID: j + 1, Session: j % sessions, Committed: true,
					Ops: []history.Op{
						{Kind: history.OpRead, Key: keyNames[k], Value: latest[k]},
						{Kind: history.OpWrite, Key: keyNames[k], Value: next},
					},
				}
				latest[k] = next
				next++
				if err := sw.WriteTxn(t); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
			if err := sw.Flush(); err != nil {
				pw.CloseWithError(err)
				return
			}
			pw.Close()
		}()
		sr, err := history.NewStreamReader(pr)
		if err != nil {
			b.Fatalf("stream reader: %v", err)
		}
		if r := core.CheckStream(&samplingSource{src: sr, sample: sample}, core.SER, window); !r.OK {
			b.Fatalf("clean NDJSON stream rejected: %s", r.Explain())
		}
		sample()
	}
	b.StopTimer()
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(n), "txns/stream")
}

// BenchmarkStream1MNDJSON verifies one million transactions end to end
// through the streaming codec under the same 4096-transaction window as
// BenchmarkStream1MWindowed — the NDJSON layer adds encode/decode cost
// but not memory: the peak heap holds at the windowed bound.
func BenchmarkStream1MNDJSON(b *testing.B) { benchStreamNDJSON(b, 1_000_000, 4096) }

// BenchmarkStream100kNDJSON is its quick-turnaround CI form.
func BenchmarkStream100kNDJSON(b *testing.B) { benchStreamNDJSON(b, 100_000, 2048) }
