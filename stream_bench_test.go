// stream_bench_test.go benchmarks long-stream online verification with
// and without epoch-windowed compaction. The windowed variant is the
// acceptance bar of the bounded-memory pipeline: one million clean RMW
// transactions verified with peak live heap bounded by the window
// (reported as the peak-heap-MB metric) while the unbounded variant
// grows linearly with the stream. Run with -benchmem to also see the
// cumulative allocation volume.
package main

import (
	"fmt"
	"runtime"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
)

// benchStream feeds n clean round-robin RMW transactions (every key
// overwritten every |keys| transactions, so values settle quickly) into
// the online checker, compacting every window/2 when windowed, and
// reports the peak post-GC heap.
func benchStream(b *testing.B, n, window int) {
	const (
		keys     = 256
		sessions = 8
	)
	keyNames := make([]history.Key, keys)
	for i := range keyNames {
		keyNames[i] = history.Key(fmt.Sprintf("k%03d", i))
	}
	var peak uint64
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		inc := core.NewIncremental(core.SER)
		inc.InitTxn(keyNames...)
		latest := make([]history.Value, keys)
		next := history.Value(1)
		for j := 0; j < n; j++ {
			k := j % keys
			ops := []history.Op{
				{Kind: history.OpRead, Key: keyNames[k], Value: latest[k]},
				{Kind: history.OpWrite, Key: keyNames[k], Value: next},
			}
			latest[k] = next
			next++
			if vio := inc.Add(history.Txn{Session: j % sessions, Ops: ops, Committed: true}); vio != nil {
				b.Fatalf("clean stream rejected at %d: %s", j, vio.Explain())
			}
			inc.MaybeCompact(window, 0, nil)
			if j%131072 == 0 {
				sample()
			}
		}
		sample()
		if r := inc.Finalize(); !r.OK {
			b.Fatalf("finalize rejected: %s", r.Explain())
		}
		if window > 0 && inc.CompactedTxns() < n/2 {
			b.Fatalf("compaction barely ran: %d of %d txns", inc.CompactedTxns(), n)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(n), "txns/stream")
}

// BenchmarkStream1MWindowed is the bounded-memory demonstration: 1M
// transactions under a 4096-transaction window.
func BenchmarkStream1MWindowed(b *testing.B) { benchStream(b, 1_000_000, 4096) }

// BenchmarkStream1MUnbounded is the O(history) baseline the window is
// measured against.
func BenchmarkStream1MUnbounded(b *testing.B) { benchStream(b, 1_000_000, 0) }

// BenchmarkStream100kWindowed / Unbounded are the quick-turnaround forms
// used by the CI bench gate (the 1M pair is for the full trajectory).
func BenchmarkStream100kWindowed(b *testing.B)  { benchStream(b, 100_000, 2048) }
func BenchmarkStream100kUnbounded(b *testing.B) { benchStream(b, 100_000, 0) }
